"""The simulated Broadband Availability Tool web application.

One :class:`BatApplication` serves one ISP's BAT across all of that ISP's
cities.  It implements the full multi-step workflow the paper describes in
Section 3.1 (and Figure 1):

1. ``GET /`` — address-entry form (opens a session).
2. ``POST /availability`` — serviceability lookup.  Depending on the input
   this renders: the plans page, a no-service page, the *incorrect address*
   suggestion page, the *multi-dwelling unit* picker, the *existing
   customer* interstitial, a not-found page, or a sticky technical error.
3. ``POST /suggestion`` / ``POST /unit`` — resolve a choice from step 2 and
   re-enter the lookup flow.
4. ``POST /newcustomer`` — proceed past the existing-customer interstitial
   without authentication.

Safeguards (dynamic per-step cookies, IP binding, rate limiting) gate every
POST.  All state lives in an in-memory session table keyed by a session
cookie, exactly like the real sites.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..addresses.database import AddressIndex
from ..addresses.model import Address
from ..isp.plans import Plan
from ..net.cookies import parse_set_cookie
from ..net.http import HttpRequest, HttpResponse
from ..net.transport import RENDER_HEADER
from ..seeding import derive_seed
from . import pages
from .profiles import BatProfile
from .safeguards import SESSION_COOKIE, TOKEN_COOKIE, SafeguardPolicy

__all__ = ["BatApplication", "OfferResolver"]

# Maps an exactly resolved canonical address to the plans offered there.
# Returns an empty tuple for "known address, no service".
OfferResolver = Callable[[Address], tuple[Plan, ...]]


@dataclass
class _Session:
    session_id: str
    suggestions: list[Address] = field(default_factory=list)
    units: list[Address] = field(default_factory=list)
    pending: Address | None = None
    passed_interstitial: bool = False
    queried_line: str = ""
    queried_zip: str = ""


def _request_cookies(request: HttpRequest) -> dict[str, str]:
    header = request.header("Cookie")
    if not header:
        return {}
    cookies: dict[str, str] = {}
    for part in header.split(";"):
        name, value = parse_set_cookie(part)
        if name:
            cookies[name] = value
    return cookies


class BatApplication:
    """One ISP's BAT, ready to be served by any transport."""

    def __init__(
        self,
        profile: BatProfile,
        index: AddressIndex,
        offers: OfferResolver,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self._index = index
        self._offers = offers
        self._seed = derive_seed(seed, "bat", profile.isp)
        self._safeguards = SafeguardPolicy(
            secret=f"{profile.isp}-{self._seed:x}",
            rate_limit_per_minute=profile.rate_limit_per_minute,
        )
        self._sessions: dict[str, _Session] = {}
        self._session_counter = 0
        self._delay_rng = np.random.default_rng(derive_seed(self._seed, "delays"))
        # Per-client task-scoped render-delay streams (see begin_task);
        # clients that never announce a task draw from the shared stream.
        self._task_delay_rngs: dict[str, np.random.Generator] = {}
        # The client being handled on *this* thread: thread-local so the
        # threaded TCP server's concurrent handle() calls can never bleed
        # one client's task stream into another's renders.
        self._active = threading.local()

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------
    @property
    def hostname(self) -> str:
        from ..isp.providers import get_isp

        return get_isp(self.profile.isp).bat_hostname

    def begin_task(self, client_ip: str, *key: object) -> None:
        """Scope one client's render-delay stream to a task's content key.

        Called by :meth:`repro.net.transport.InProcessTransport.begin_task`
        when a BQT worker starts a query, so the delays a task's renders
        consume are a pure function of ``(app seed, key)`` rather than of
        the task's position in the shard-wide request stream.
        """
        self._task_delay_rngs[client_ip] = np.random.default_rng(
            derive_seed(self._seed, "delays", *key)
        )

    def handle(self, request: HttpRequest, client_ip: str, now: float) -> HttpResponse:
        self._active.ip = client_ip
        cookies = _request_cookies(request)
        session_id = cookies.get(SESSION_COOKIE)
        token = cookies.get(TOKEN_COOKIE)

        if request.method == "GET" and request.path == "/":
            return self._handle_home(client_ip, now)

        routes = {
            "/availability": self._handle_availability,
            "/suggestion": self._handle_suggestion,
            "/unit": self._handle_unit,
            "/newcustomer": self._handle_new_customer,
        }
        handler = routes.get(request.path)
        if request.method != "POST" or handler is None:
            return HttpResponse.html(
                pages.render_not_found(self.profile, request.path), status=404
            )

        decision = self._safeguards.check_request(
            session_id, token, client_ip, now, requires_session=True
        )
        if not decision.allowed:
            status = 429 if "rate" in decision.reason else 403
            return self._respond(
                None,
                pages.render_blocked(self.profile, decision.reason),
                self.profile.lookup_delay * 0.2,
                status=status,
            )
        session = self._sessions.get(session_id or "")
        if session is None:
            return self._respond(
                None,
                pages.render_blocked(self.profile, "expired session"),
                self.profile.lookup_delay * 0.2,
                status=403,
            )
        return handler(session, request)

    # ------------------------------------------------------------------
    # Route handlers
    # ------------------------------------------------------------------
    def _handle_home(self, client_ip: str, now: float) -> HttpResponse:
        decision = self._safeguards.check_request(
            None, None, client_ip, now, requires_session=False
        )
        if not decision.allowed:
            return self._respond(
                None,
                pages.render_blocked(self.profile, decision.reason),
                self.profile.home_delay * 0.2,
                status=429,
            )
        self._session_counter += 1
        session_id = hashlib.sha256(
            f"{self._seed}:{self._session_counter}:{client_ip}".encode()
        ).hexdigest()[:20]
        self._sessions[session_id] = _Session(session_id=session_id)
        first_token = self._safeguards.open_session(session_id, client_ip)
        response = HttpResponse.html(pages.render_home(self.profile))
        response.add_header("Set-Cookie", f"{SESSION_COOKIE}={session_id}; Path=/")
        response.add_header("Set-Cookie", f"{TOKEN_COOKIE}={first_token}; Path=/")
        response.set_header(RENDER_HEADER, str(self._render_delay(self.profile.home_delay)))
        return response

    def _handle_availability(
        self, session: _Session, request: HttpRequest
    ) -> HttpResponse:
        form = request.form()
        street_line = form.get(self.profile.address_field, "").strip()
        zip_code = form.get(self.profile.zip_field, "").strip()
        if not street_line or not zip_code:
            return self._respond(
                session,
                pages.render_not_found(self.profile, street_line or "(empty)"),
                self.profile.lookup_delay * 0.5,
            )
        session.queried_line = street_line
        session.queried_zip = zip_code
        return self._resolve(session, street_line, zip_code)

    def _handle_suggestion(
        self, session: _Session, request: HttpRequest
    ) -> HttpResponse:
        choice = request.form().get("choice", "")
        if not choice.isdigit() or int(choice) >= len(session.suggestions):
            return self._respond(
                session,
                pages.render_not_found(self.profile, session.queried_line),
                self.profile.lookup_delay * 0.5,
            )
        chosen = session.suggestions[int(choice)]
        session.suggestions = []
        return self._resolve(session, chosen.street_line(), chosen.zip_code)

    def _handle_unit(self, session: _Session, request: HttpRequest) -> HttpResponse:
        choice = request.form().get("unit", "")
        if not choice.isdigit() or int(choice) >= len(session.units):
            return self._respond(
                session,
                pages.render_not_found(self.profile, session.queried_line),
                self.profile.lookup_delay * 0.5,
            )
        chosen = session.units[int(choice)]
        session.units = []
        return self._resolve(session, chosen.street_line(), chosen.zip_code)

    def _handle_new_customer(
        self, session: _Session, request: HttpRequest
    ) -> HttpResponse:
        if session.pending is None:
            return self._respond(
                session,
                pages.render_not_found(self.profile, session.queried_line),
                self.profile.lookup_delay * 0.5,
            )
        session.passed_interstitial = True
        # The serviceability lookup already ran before the interstitial, so
        # only the plans render is charged here.
        return self._finish(session, session.pending, charge_lookup=False)

    # ------------------------------------------------------------------
    # Lookup flow
    # ------------------------------------------------------------------
    def _resolve(
        self, session: _Session, street_line: str, zip_code: str
    ) -> HttpResponse:
        if self._is_flaky(street_line, zip_code):
            return self._respond(
                session,
                pages.render_technical_error(self.profile),
                self.profile.lookup_delay,
            )
        found = self._index.lookup(street_line, zip_code)
        if found is not None:
            if self._is_existing_customer(found) and not session.passed_interstitial:
                session.pending = found
                return self._respond(
                    session,
                    pages.render_existing_customer(self.profile, found.street_line()),
                    self.profile.lookup_delay + self.profile.interstitial_delay,
                )
            return self._finish(session, found)

        units = self._index.units_at(street_line, zip_code)
        if units:
            session.units = list(units)
            return self._respond(
                session,
                pages.render_mdu(
                    self.profile,
                    street_line,
                    [unit.unit or "?" for unit in units],
                ),
                self.profile.lookup_delay + self.profile.interstitial_delay,
            )

        candidates = self._index.candidates(
            street_line, zip_code, limit=self.profile.suggestion_limit
        )
        if candidates:
            session.suggestions = list(candidates)
            return self._respond(
                session,
                pages.render_suggestions(
                    self.profile,
                    street_line,
                    [(c.street_line(), c.zip_code) for c in candidates],
                ),
                self.profile.lookup_delay,
            )
        return self._respond(
            session,
            pages.render_not_found(self.profile, street_line),
            self.profile.lookup_delay,
        )

    def _finish(
        self, session: _Session, address: Address, charge_lookup: bool = True
    ) -> HttpResponse:
        # A POST that resolves an address performs the serviceability lookup
        # *and* renders the outcome page, so both delays are charged.
        lookup = self.profile.lookup_delay if charge_lookup else 0.0
        plans = self._offers(address)
        if not plans:
            return self._respond(
                session,
                pages.render_no_service(self.profile, address.street_line()),
                lookup + self.profile.lookup_delay * 0.5,
            )
        return self._respond(
            session,
            pages.render_plans(self.profile, address.street_line(), list(plans)),
            lookup + self.profile.plans_delay,
        )

    # ------------------------------------------------------------------
    # Behaviour draws (deterministic per address)
    # ------------------------------------------------------------------
    def _address_uniform(self, label: str, street_line: str, zip_code: str) -> float:
        from ..addresses.normalize import canonical_key

        draw = derive_seed(self._seed, label, canonical_key(street_line, zip_code))
        return (draw % 10_000_000) / 10_000_000.0

    def _is_flaky(self, street_line: str, zip_code: str) -> bool:
        return (
            self._address_uniform("flaky", street_line, zip_code)
            < self.profile.flaky_error_rate
        )

    def _is_existing_customer(self, address: Address) -> bool:
        return (
            self._address_uniform("existing", address.street_line(), address.zip_code)
            < self.profile.existing_customer_rate
        )

    # ------------------------------------------------------------------
    # Response assembly
    # ------------------------------------------------------------------
    def _render_delay(self, median: float) -> float:
        active_ip = getattr(self._active, "ip", None)
        rng = self._delay_rng
        if active_ip is not None:
            rng = self._task_delay_rngs.get(active_ip, rng)
        spread = float(np.exp(self.profile.render_sigma * rng.standard_normal()))
        return round(median * spread, 3)

    def _respond(
        self,
        session: _Session | None,
        markup: str,
        delay_median: float,
        status: int = 200,
    ) -> HttpResponse:
        response = HttpResponse.html(markup, status=status)
        if session is not None:
            next_token = self._safeguards.rotate_token(session.session_id)
            response.add_header("Set-Cookie", f"{TOKEN_COOKIE}={next_token}; Path=/")
        response.set_header(RENDER_HEADER, str(self._render_delay(delay_median)))
        return response
