"""Anti-scraping safeguards.

Section 3.2 of the paper explains why the older direct-API approach broke:
ISPs introduced *dynamic cookies* ("unique server-side parameters appended
to each user session"), per-IP blocking of cookie reuse, and rate limits.
BQT's whole design — full browser mimicry over a residential proxy pool —
exists to survive these.  The simulated BATs therefore implement them for
real:

* every response rotates a session token; the next request must echo the
  latest token or the session is blocked;
* a session token is bound to the client IP that created it; replaying it
  from a different IP blocks the session (defeats naive cookie sharing);
* a sliding-window per-IP rate limit returns 429s to over-aggressive
  clients (defeats single-IP fleets).
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field

__all__ = ["SafeguardPolicy", "SafeguardDecision", "RateLimiter"]

TOKEN_COOKIE = "bat_token"
SESSION_COOKIE = "bat_session"


@dataclass(frozen=True)
class SafeguardDecision:
    """Outcome of a safeguard check."""

    allowed: bool
    reason: str = ""


class RateLimiter:
    """Sliding-window per-IP request limiter."""

    def __init__(self, max_requests: int, window_seconds: float = 60.0) -> None:
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self._events: dict[str, deque[float]] = {}

    def check(self, ip: str, now: float) -> bool:
        """Record one request; return False if the IP is over budget.

        Client clocks are independent (each BQT worker runs its own
        virtual clock), so per-IP time is clamped monotonic: a request
        stamped earlier than this IP's last event counts as concurrent
        with it, which is exactly what simultaneous sessions are.
        """
        events = self._events.setdefault(ip, deque())
        if events and now < events[-1]:
            now = events[-1]
        cutoff = now - self.window_seconds
        while events and events[0] < cutoff:
            events.popleft()
        events.append(now)
        return len(events) <= self.max_requests

    def requests_in_window(self, ip: str, now: float) -> int:
        events = self._events.get(ip)
        if not events:
            return 0
        cutoff = now - self.window_seconds
        return sum(1 for t in events if t >= cutoff)


@dataclass
class _SessionGuard:
    ip: str
    token: str
    step: int = 0


class SafeguardPolicy:
    """Dynamic-cookie and rate-limit enforcement for one BAT."""

    def __init__(self, secret: str, rate_limit_per_minute: int) -> None:
        self._secret = secret
        self._rate_limiter = RateLimiter(rate_limit_per_minute)
        self._sessions: dict[str, _SessionGuard] = {}

    def _mint_token(self, session_id: str, step: int) -> str:
        payload = f"{self._secret}:{session_id}:{step}".encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:24]

    def open_session(self, session_id: str, ip: str) -> str:
        """Begin tracking a session; returns the first token to issue."""
        token = self._mint_token(session_id, 0)
        self._sessions[session_id] = _SessionGuard(ip=ip, token=token, step=0)
        return token

    def rotate_token(self, session_id: str) -> str:
        """Issue the next per-step token for a session."""
        guard = self._sessions[session_id]
        guard.step += 1
        guard.token = self._mint_token(session_id, guard.step)
        return guard.token

    def check_request(
        self,
        session_id: str | None,
        presented_token: str | None,
        ip: str,
        now: float,
        requires_session: bool,
    ) -> SafeguardDecision:
        """Validate one incoming request against all safeguards."""
        if not self._rate_limiter.check(ip, now):
            return SafeguardDecision(False, "rate limit exceeded")
        if not requires_session:
            return SafeguardDecision(True)
        if not session_id or session_id not in self._sessions:
            return SafeguardDecision(False, "missing session")
        guard = self._sessions[session_id]
        if guard.ip != ip:
            return SafeguardDecision(False, "session bound to a different network")
        if presented_token != guard.token:
            return SafeguardDecision(False, "stale session token")
        return SafeguardDecision(True)

    def forget(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)
