"""Command-line curation runner.

Builds a world, runs the full Section-4 curation methodology, and writes
the privacy-preserving dataset release::

    python -m repro.dataset --out dataset.csv --scale 0.1 \
        --cities new-orleans wichita
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..exec.base import EXECUTOR_BACKENDS, default_backend
from ..exec.store import build_result_cache
from ..world import WorldConfig, build_world
from .curation import CurationConfig, CurationPipeline
from .io import write_dataset_csv
from .sampling import SamplingConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dataset",
        description="Curate a broadband-plans dataset and write the release CSV.",
    )
    parser.add_argument("--out", type=Path, default=Path("broadband_plans.csv"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="block-group scale factor (1.0 = paper scale)")
    parser.add_argument("--cities", nargs="*", default=None)
    parser.add_argument("--isps", nargs="*", default=None)
    parser.add_argument("--fraction", type=float, default=0.10,
                        help="per-block-group sampling fraction (paper: 0.10)")
    parser.add_argument("--min-samples", type=int, default=30,
                        help="per-block-group sample floor (paper: 30)")
    parser.add_argument("--workers", type=int, default=50,
                        help="BQT container-fleet size (paper: 50-100)")
    parser.add_argument("--backend", default=None,
                        choices=EXECUTOR_BACKENDS,
                        help="shard execution backend (default: "
                             "REPRO_EXEC_BACKEND or serial; all backends "
                             "produce the identical dataset)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="on-disk query-result cache root (default: "
                             "REPRO_CACHE_DIR; unset = memory-only cache)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="LRU-evict the disk cache down to this many "
                             "bytes (default: REPRO_CACHE_MAX_BYTES or "
                             "unbounded)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the query-result cache entirely "
                             "(every shard is replayed)")
    args = parser.parse_args(argv)

    started = time.time()
    world = build_world(
        WorldConfig(
            seed=args.seed,
            scale=args.scale,
            cities=tuple(args.cities) if args.cities else None,
        )
    )
    print(f"world built in {time.time() - started:.0f}s "
          f"({len(world.cities)} cities)", flush=True)

    cache = build_result_cache(
        cache_dir=args.cache_dir,
        max_bytes=args.cache_max_bytes,
        enabled=not args.no_cache,
    )
    pipeline = CurationPipeline(
        world,
        CurationConfig(
            sampling=SamplingConfig(
                fraction=args.fraction, min_samples=args.min_samples
            ),
            n_workers=args.workers,
        ),
        executor=args.backend if args.backend is not None else default_backend(),
        cache=cache,
    )
    started = time.time()
    dataset = pipeline.curate(
        isps=tuple(args.isps) if args.isps else None
    )
    counts = dataset.summary_counts()
    print(f"curated {counts['observations']} observations "
          f"({counts['addresses']} addresses, {counts['block_groups']} block "
          f"groups) in {time.time() - started:.0f}s")
    run = pipeline.last_run
    print(f"cache: replayed {run.replayed_queries} queries; "
          f"{run.cached_shards}/{run.total_shards} shards cached "
          f"({run.disk_shards} from disk)")

    rows = write_dataset_csv(dataset, args.out)
    print(f"wrote {rows} rows to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
