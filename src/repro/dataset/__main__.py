"""Command-line curation runner.

Builds a world, runs the full Section-4 curation methodology, and writes
the privacy-preserving dataset release::

    python -m repro.dataset --out dataset.csv --scale 0.1 \
        --cities new-orleans wichita
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..exec.base import EXECUTOR_BACKENDS, default_backend
from ..world import WorldConfig, build_world
from .curation import CurationConfig, CurationPipeline
from .io import write_dataset_csv
from .sampling import SamplingConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dataset",
        description="Curate a broadband-plans dataset and write the release CSV.",
    )
    parser.add_argument("--out", type=Path, default=Path("broadband_plans.csv"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="block-group scale factor (1.0 = paper scale)")
    parser.add_argument("--cities", nargs="*", default=None)
    parser.add_argument("--isps", nargs="*", default=None)
    parser.add_argument("--fraction", type=float, default=0.10,
                        help="per-block-group sampling fraction (paper: 0.10)")
    parser.add_argument("--min-samples", type=int, default=30,
                        help="per-block-group sample floor (paper: 30)")
    parser.add_argument("--workers", type=int, default=50,
                        help="BQT container-fleet size (paper: 50-100)")
    parser.add_argument("--backend", default=None,
                        choices=EXECUTOR_BACKENDS,
                        help="shard execution backend (default: "
                             "REPRO_EXEC_BACKEND or serial; all backends "
                             "produce the identical dataset)")
    args = parser.parse_args(argv)

    started = time.time()
    world = build_world(
        WorldConfig(
            seed=args.seed,
            scale=args.scale,
            cities=tuple(args.cities) if args.cities else None,
        )
    )
    print(f"world built in {time.time() - started:.0f}s "
          f"({len(world.cities)} cities)", flush=True)

    pipeline = CurationPipeline(
        world,
        CurationConfig(
            sampling=SamplingConfig(
                fraction=args.fraction, min_samples=args.min_samples
            ),
            n_workers=args.workers,
        ),
        executor=args.backend if args.backend is not None else default_backend(),
    )
    started = time.time()
    dataset = pipeline.curate(
        isps=tuple(args.isps) if args.isps else None
    )
    counts = dataset.summary_counts()
    print(f"curated {counts['observations']} observations "
          f"({counts['addresses']} addresses, {counts['block_groups']} block "
          f"groups) in {time.time() - started:.0f}s")

    rows = write_dataset_csv(dataset, args.out)
    print(f"wrote {rows} rows to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
