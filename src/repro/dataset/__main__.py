"""Command-line curation runner.

Builds a world, runs the full Section-4 curation methodology, and writes
the privacy-preserving dataset release::

    python -m repro.dataset --out dataset.csv --scale 0.1 \
        --cities new-orleans wichita

A ``warm`` subcommand prefetches the on-disk query cache for the
thirty-city paper-scale configuration (the one ``python -m
repro.experiments`` curates), so every later reproduction loads its
shards from disk instead of replaying a single BQT query::

    python -m repro.dataset warm --cache-dir ~/.cache/repro

A ``worker`` subcommand serves curation shard specs to a remote-backend
coordinator (see :mod:`repro.dataset.worker`), and ``cache ls`` prints a
store root's manifest — entries in LRU order plus recorded shard costs::

    python -m repro.dataset worker --port 7071 --width 4 &
    python -m repro.dataset --backend remote --remote-workers 127.0.0.1:7071
    python -m repro.dataset cache ls --cache-dir ~/.cache/repro

A ``serve`` subcommand runs the online serving tier: an HTTP query API
over the two-tier cache with PCN-style admission control (see
:mod:`repro.serve`)::

    python -m repro.dataset serve --port 7300 --cities wichita \\
        --cache-dir ~/.cache/repro --rate 20 --slo-ms 500
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from ..exec.base import default_backend
from ..exec.store import build_result_cache, default_cache_dir
from ..world import WorldConfig, build_world
from .cli import (
    add_backend_arguments,
    add_scheduling_arguments,
    print_cpu_profile,
    print_run_summary,
    render_store_table,
    resolve_backend_choice,
)
from .curation import CurationConfig, CurationPipeline
from .io import write_dataset_csv
from .sampling import SamplingConfig


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "warm":
        return warm_main(argv[1:])
    if argv and argv[0] == "worker":
        from .worker import worker_main

        return worker_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "serve":
        # Imported lazily: the serving tier pulls asyncio + admission
        # machinery the batch CLI never needs.
        from ..serve.cli import serve_main

        return serve_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.dataset",
        description="Curate a broadband-plans dataset and write the "
                    "release CSV.  (See also: the 'warm' subcommand, "
                    "which prefetches the disk cache for the paper-scale "
                    "experiment configuration.)",
    )
    parser.add_argument("--out", type=Path, default=Path("broadband_plans.csv"))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="block-group scale factor (1.0 = paper scale)")
    parser.add_argument("--cities", nargs="*", default=None)
    parser.add_argument("--isps", nargs="*", default=None)
    parser.add_argument("--fraction", type=float, default=0.10,
                        help="per-block-group sampling fraction (paper: 0.10)")
    parser.add_argument("--min-samples", type=int, default=30,
                        help="per-block-group sample floor (paper: 30)")
    parser.add_argument("--workers", type=int, default=50,
                        help="BQT container-fleet size (paper: 50-100)")
    add_backend_arguments(parser)
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="on-disk query-result cache root (default: "
                             "REPRO_CACHE_DIR; unset = memory-only cache)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="LRU-evict the disk cache down to this many "
                             "bytes (default: REPRO_CACHE_MAX_BYTES or "
                             "unbounded)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the query-result cache entirely "
                             "(every shard is replayed)")
    parser.add_argument("--profile-cpu", action="store_true",
                        help="run the curation under cProfile and print "
                             "the top functions by cumulative time plus "
                             "hot-path memo cache counters")
    add_scheduling_arguments(parser)
    args = parser.parse_args(argv)
    backend = resolve_backend_choice(args)

    started = time.time()
    world = build_world(
        WorldConfig(
            seed=args.seed,
            scale=args.scale,
            cities=tuple(args.cities) if args.cities else None,
        )
    )
    print(f"world built in {time.time() - started:.0f}s "
          f"({len(world.cities)} cities)", flush=True)

    cache = build_result_cache(
        cache_dir=args.cache_dir,
        max_bytes=args.cache_max_bytes,
        enabled=not args.no_cache,
    )
    pipeline = CurationPipeline(
        world,
        CurationConfig(
            sampling=SamplingConfig(
                fraction=args.fraction, min_samples=args.min_samples
            ),
            n_workers=args.workers,
        ),
        executor=backend if backend is not None else default_backend(),
        cache=cache,
        schedule=args.schedule,
        chunk_tasks=args.chunk_tasks,
    )
    started = time.time()
    profiler = None
    if args.profile_cpu:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    dataset = pipeline.curate(
        isps=tuple(args.isps) if args.isps else None
    )
    if profiler is not None:
        profiler.disable()
    counts = dataset.summary_counts()
    print(f"curated {counts['observations']} observations "
          f"({counts['addresses']} addresses, {counts['block_groups']} block "
          f"groups) in {time.time() - started:.0f}s "
          f"(index build {pipeline.last_run.index_build_s:.2f}s)")
    print_run_summary(pipeline, args.profile_shards)
    if profiler is not None:
        print_cpu_profile(profiler)

    rows = write_dataset_csv(dataset, args.out)
    print(f"wrote {rows} rows to {args.out}")
    return 0


def warm_main(argv: list[str]) -> int:
    """``python -m repro.dataset warm``: prefetch the paper-scale cache.

    Curates exactly the configuration the experiment context uses —
    thirty cities, 10% stratified sampling, the env-tunable scale and
    sample floor — through an on-disk cache, so the next ``python -m
    repro.experiments`` (or CI warm pass) loads every shard from disk and
    replays zero queries.  Observed shard costs land in the manifest as a
    bonus: the warming run itself seeds the scheduler's cost model.
    """
    # Imported here: repro.experiments pulls the analysis stack, which the
    # plain curation CLI does not need.
    from ..experiments.context import default_scale, paper_curation_config

    parser = argparse.ArgumentParser(
        prog="python -m repro.dataset warm",
        description="Pre-populate the on-disk query cache for the "
                    "paper-scale experiment configuration.",
    )
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="on-disk cache root to warm (default: "
                             "REPRO_CACHE_DIR; required one way or the "
                             "other)")
    parser.add_argument("--cache-max-bytes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scale", type=float, default=None,
                        help="block-group scale factor (default: "
                             "REPRO_BENCH_SCALE or 0.12 — the experiment "
                             "context's own default; 1.0 = paper scale)")
    parser.add_argument("--min-samples", type=int, default=None,
                        help="per-block-group sample floor (default: "
                             "REPRO_BENCH_MIN_SAMPLES or the context "
                             "default)")
    parser.add_argument("--cities", nargs="*", default=None,
                        help="restrict warming to specific cities "
                             "(default: all thirty)")
    parser.add_argument("--workers", type=int, default=50,
                        help="BQT fleet size per shard (default 50 — the "
                             "value the experiment context hardcodes).  "
                             "Fleet size is part of every shard's cache "
                             "key: warming with a different value "
                             "populates keys the experiments CLI will "
                             "never look up")
    add_backend_arguments(parser)
    add_scheduling_arguments(parser)
    args = parser.parse_args(argv)
    backend = resolve_backend_choice(args)

    cache = build_result_cache(
        cache_dir=args.cache_dir, max_bytes=args.cache_max_bytes
    )
    if cache is None or cache.store is None:
        parser.error("warm needs an on-disk cache: pass --cache-dir or "
                     "set REPRO_CACHE_DIR")

    scale = args.scale if args.scale is not None else default_scale()
    started = time.time()
    world = build_world(
        WorldConfig(
            seed=args.seed,
            scale=scale,
            cities=tuple(args.cities) if args.cities else None,
        )
    )
    print(f"world built in {time.time() - started:.0f}s "
          f"({len(world.cities)} cities, scale {scale})", flush=True)

    # One shared constructor with get_context, so the warmed cache keys
    # are exactly the ones the experiments CLI will look up.
    config = paper_curation_config(args.min_samples)
    if args.workers != config.n_workers:
        print(f"warning: --workers {args.workers} changes the shard cache "
              f"keys; `python -m repro.experiments` curates with "
              f"{config.n_workers} workers and will not reuse this warm "
              "cache", flush=True)
        config = replace(config, n_workers=args.workers)
    pipeline = CurationPipeline(
        world,
        config,
        executor=backend if backend is not None else default_backend(),
        cache=cache,
        schedule=args.schedule,
        chunk_tasks=args.chunk_tasks,
    )
    started = time.time()
    dataset = pipeline.curate()
    run = pipeline.last_run
    print(f"warmed {run.total_shards} shards "
          f"({len(dataset)} observations) in {time.time() - started:.0f}s: "
          f"{run.executed_shards} executed, {run.cached_shards} already "
          f"cached ({run.disk_shards} from disk)")
    print_run_summary(pipeline, args.profile_shards)
    store = cache.store
    print(f"store: {len(store)} shard entries, {store.total_bytes()} bytes, "
          f"{len(store.cost_records())} cost records at {store.root}")
    return 0


def cache_main(argv: list[str]) -> int:
    """``python -m repro.dataset cache ls``: inspect a store root.

    Prints the manifest — shard entries in LRU order with their (city,
    ISP, seed, scale, config digest) identities, sizes, and recorded
    cost rows — without touching a byte of entry content.  This is what a
    worker would ship for each cached shard, so operators can audit a
    shared cache root (or a worker's ``--cache-dir``) at a glance.
    """
    from ..exec.store import DiskShardStore

    parser = argparse.ArgumentParser(
        prog="python -m repro.dataset cache",
        description="Inspect an on-disk query-cache root.",
    )
    parser.add_argument("action", choices=("ls",),
                        help="ls: print the manifest (entries in LRU "
                             "order, bytes, cost records)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="store root to inspect (default: "
                             "REPRO_CACHE_DIR)")
    args = parser.parse_args(argv)

    root = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    if root is None:
        parser.error("cache ls needs a store root: pass --cache-dir or "
                     "set REPRO_CACHE_DIR")
    if not Path(root).exists():
        parser.error(f"no store at {root}")
    store = DiskShardStore(root)
    print(f"store root: {store.root}")
    print(render_store_table(store))
    return 0


if __name__ == "__main__":
    sys.exit(main())
