"""Dataset serialization (CSV with a JSON plans column).

The release format mirrors the paper's public dataset: hashed address ids,
block-group geoids, ISP, query status, timing, and the observed plans.  No
PII and no raw street strings leave the pipeline.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..errors import DatasetError
from .container import BroadbandDataset
from .records import AddressObservation, PlanObservation

__all__ = ["write_dataset_csv", "read_dataset_csv"]

_COLUMNS = (
    "address_id",
    "city",
    "block_group",
    "isp",
    "status",
    "elapsed_seconds",
    "plans_json",
)


def _plans_to_json(plans: tuple[PlanObservation, ...]) -> str:
    return json.dumps(
        [
            {
                "name": p.name,
                "down": p.download_mbps,
                "up": p.upload_mbps,
                "price": p.monthly_price,
            }
            for p in plans
        ],
        separators=(",", ":"),
    )


def _plans_from_json(payload: str) -> tuple[PlanObservation, ...]:
    try:
        rows = json.loads(payload) if payload else []
    except json.JSONDecodeError as exc:
        raise DatasetError(f"bad plans column: {payload[:60]!r}") from exc
    return tuple(
        PlanObservation(
            name=row["name"],
            download_mbps=float(row["down"]),
            upload_mbps=float(row["up"]),
            monthly_price=float(row["price"]),
        )
        for row in rows
    )


def write_dataset_csv(dataset: BroadbandDataset, path: str | Path) -> int:
    """Write the dataset release file; returns the number of rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for obs in dataset:
            writer.writerow(
                (
                    obs.address_id,
                    obs.city,
                    obs.block_group,
                    obs.isp,
                    obs.status,
                    f"{obs.elapsed_seconds:.3f}",
                    _plans_to_json(obs.plans),
                )
            )
    return len(dataset)


def read_dataset_csv(path: str | Path) -> BroadbandDataset:
    """Load a dataset release file."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    observations: list[AddressObservation] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(_COLUMNS) - set(reader.fieldnames or ())
        if missing:
            raise DatasetError(f"dataset file missing columns: {sorted(missing)}")
        for row in reader:
            observations.append(
                AddressObservation(
                    address_id=row["address_id"],
                    city=row["city"],
                    block_group=row["block_group"],
                    isp=row["isp"],
                    status=row["status"],
                    plans=_plans_from_json(row["plans_json"]),
                    elapsed_seconds=float(row["elapsed_seconds"]),
                )
            )
    return BroadbandDataset(tuple(observations))
