"""Stratified street-address sampling.

The paper samples uniformly at the census-block-group level: "for each
(ISP, city) pair ... we randomly sample 10% of street addresses for each
such block group", with the floor that every block group contributes at
least thirty samples so block-group statistics are meaningful
(Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..addresses.generator import CityAddressBook
from ..addresses.noise import NoisyAddress
from ..errors import ConfigurationError
from ..seeding import derive_seed

__all__ = ["SamplingConfig", "sample_block_group", "sample_city"]


@dataclass(frozen=True)
class SamplingConfig:
    """Stratified-sampling knobs (paper defaults)."""

    fraction: float = 0.10
    min_samples: int = 30

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")

    def sample_size(self, population: int) -> int:
        """Number of addresses to draw from a block group of given size."""
        target = int(round(population * self.fraction))
        return min(population, max(self.min_samples, target))


def sample_block_group(
    entries: tuple[NoisyAddress, ...],
    config: SamplingConfig,
    rng: np.random.Generator,
) -> tuple[NoisyAddress, ...]:
    """Draw the stratified sample for one block group."""
    size = config.sample_size(len(entries))
    if size >= len(entries):
        return entries
    chosen = rng.choice(len(entries), size=size, replace=False)
    return tuple(entries[i] for i in sorted(map(int, chosen)))


def sample_city(
    book: CityAddressBook,
    config: SamplingConfig,
    seed: int,
    isp: str,
) -> dict[str, tuple[NoisyAddress, ...]]:
    """Stratified sample for every block group of a city, for one ISP.

    The draw is independent per (ISP, city, block group), as in the paper
    (each ISP's query set is sampled separately).
    """
    samples: dict[str, tuple[NoisyAddress, ...]] = {}
    for geoid in book.block_groups:
        rng = np.random.default_rng(derive_seed(seed, "sample", isp, geoid))
        samples[geoid] = sample_block_group(book.feed_in(geoid), config, rng)
    return samples
