"""Dataset record types.

The curated dataset is a flat table of *address observations* — one row per
(street address, ISP) query — with plan details attached.  Address
identities are salted hashes, mirroring the paper's privacy-preserving
public release (Section 4.1: "converting each street address within a
census block group into a unique identifier using a hashing process").

Technology inference: the dataset layer never sees ground truth, so access
technology is inferred from plan shape the way a measurement researcher
would — symmetric up/down speeds fingerprint fiber, heavily asymmetric
sub-120 Mbps plans fingerprint DSL, and cable ISPs are known to be cable
from the provider registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.parsing import ObservedPlan
from ..isp.providers import is_cable

__all__ = ["PlanObservation", "AddressObservation", "infer_technology"]

TECH_FIBER = "fiber"
TECH_DSL = "dsl"
TECH_CABLE = "cable"
TECH_UNKNOWN = "unknown"


@dataclass(frozen=True)
class PlanObservation:
    """One plan as recorded in the curated dataset."""

    name: str
    download_mbps: float
    upload_mbps: float
    monthly_price: float

    @property
    def cv(self) -> float:
        """Carriage value (download Mbps per dollar per month)."""
        return self.download_mbps / self.monthly_price

    @property
    def upload_cv(self) -> float:
        return self.upload_mbps / self.monthly_price

    @classmethod
    def from_observed(cls, plan: ObservedPlan) -> "PlanObservation":
        return cls(
            name=plan.name,
            download_mbps=plan.download_mbps,
            upload_mbps=plan.upload_mbps,
            monthly_price=plan.monthly_price,
        )


def infer_technology(isp: str, plans: tuple[PlanObservation, ...]) -> str:
    """Infer access technology from the observed plan shapes.

    For cable providers the registry answers directly.  For telcos, a
    symmetric top plan indicates fiber; an asymmetric low-speed profile
    indicates DSL.
    """
    if is_cable(isp):
        return TECH_CABLE
    if not plans:
        return TECH_UNKNOWN
    best = max(plans, key=lambda p: p.download_mbps)
    if best.download_mbps > 0 and (
        abs(best.upload_mbps - best.download_mbps) / best.download_mbps < 0.15
    ):
        return TECH_FIBER
    return TECH_DSL


@dataclass(frozen=True)
class AddressObservation:
    """One (address, ISP) query outcome in the curated dataset.

    Attributes:
        address_id: Salted hash of the canonical address (privacy release).
        city: Canonical city key.
        block_group: Geoid of the containing block group (the Zillow feed
            is geocoded, so the sampler knows this without de-anonymizing).
        isp: Canonical ISP key.
        status: Terminal :class:`~repro.core.workflow.QueryStatus` value.
        plans: Plans observed (empty unless ``status == "plans"``).
        elapsed_seconds: Query resolution time (virtual seconds).
    """

    address_id: str
    city: str
    block_group: str
    isp: str
    status: str
    plans: tuple[PlanObservation, ...]
    elapsed_seconds: float

    @property
    def is_hit(self) -> bool:
        return self.status in ("plans", "no_service")

    @property
    def has_plans(self) -> bool:
        return bool(self.plans)

    @property
    def best_cv(self) -> float | None:
        """Best carriage value offered at this address (None if no plans)."""
        if not self.plans:
            return None
        return max(plan.cv for plan in self.plans)

    @property
    def best_upload_cv(self) -> float | None:
        if not self.plans:
            return None
        return max(plan.upload_cv for plan in self.plans)

    @property
    def technology(self) -> str:
        return infer_technology(self.isp, self.plans)
