"""Shared command-line plumbing for the curation and experiment CLIs.

Lives outside ``__main__`` so ``python -m repro.dataset`` (which loads
that module as ``__main__``) and library importers (``repro.experiments.
__main__``, tests) see one module instance instead of two.
"""

from __future__ import annotations

import argparse
import os

from ..errors import ConfigurationError
from ..exec.base import EXECUTOR_BACKENDS
from ..exec.membership import (
    COORDINATOR_ENV,
    ELASTIC_ENV,
    parse_coordinator_address,
)
from ..exec.remote import REMOTE_WORKERS_ENV, parse_worker_addresses
from ..exec.schedule import SCHEDULE_MODES, parse_chunk_tasks
from .curation import CurationPipeline, CurationRunReport

__all__ = [
    "add_backend_arguments",
    "add_scheduling_arguments",
    "render_cache_stats",
    "render_shard_table",
    "render_store_table",
    "resolve_backend_choice",
    "print_cpu_profile",
    "print_run_summary",
]


def add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution-backend knobs shared by both CLIs."""
    parser.add_argument("--backend", default=None,
                        choices=EXECUTOR_BACKENDS,
                        help="shard execution backend (default: "
                             "REPRO_EXEC_BACKEND or serial; all backends "
                             "produce the identical dataset)")
    parser.add_argument("--remote-workers", default=None,
                        metavar="HOST:PORT,...",
                        help="worker fleet for the remote backend, as a "
                             "comma-separated host:port list (default: "
                             "REPRO_REMOTE_WORKERS).  Implies --backend "
                             "remote.  Start workers with `python -m "
                             "repro.dataset worker`")
    parser.add_argument("--elastic", action="store_true", default=False,
                        help="remote backend, elastic fleet: run a "
                             "membership coordinator and consume whatever "
                             "workers --join it (instead of a static "
                             "--remote-workers list).  Implies --backend "
                             "remote.  Equivalent to REPRO_ELASTIC=1")
    parser.add_argument("--coordinator", default=None, metavar="HOST:PORT",
                        help="bind address for the elastic membership "
                             "coordinator (default: REPRO_COORDINATOR or "
                             "127.0.0.1:7070).  Implies --elastic")


def resolve_backend_choice(args: argparse.Namespace) -> str | None:
    """Fold ``--remote-workers``/``--elastic``/``--coordinator`` into the
    backend choice.

    Validates the addresses, publishes them through the environment
    (``REPRO_REMOTE_WORKERS`` / ``REPRO_ELASTIC`` / ``REPRO_COORDINATOR``
    — the one place ``resolve_executor("remote")`` reads fleet
    configuration, so CLI and environment can never drift), and implies
    ``--backend remote`` when only fleet knobs were given.  A static
    fleet and an elastic one are mutually exclusive by construction.
    """
    elastic = bool(getattr(args, "elastic", False)) or (
        getattr(args, "coordinator", None) is not None
    )
    if elastic and args.remote_workers:
        raise SystemExit(
            "--elastic consumes the membership directory; do not also "
            "pass --remote-workers"
        )
    if args.remote_workers:
        try:
            parse_worker_addresses(args.remote_workers)
        except ConfigurationError as exc:
            raise SystemExit(f"--remote-workers: {exc}") from None
        os.environ[REMOTE_WORKERS_ENV] = args.remote_workers
        if args.backend is None:
            args.backend = "remote"
    if elastic:
        coordinator = getattr(args, "coordinator", None)
        if coordinator is not None:
            try:
                parse_coordinator_address(coordinator)
            except ConfigurationError as exc:
                raise SystemExit(f"--coordinator: {exc}") from None
            os.environ[COORDINATOR_ENV] = coordinator
        os.environ[ELASTIC_ENV] = "1"
        if args.backend is None:
            args.backend = "remote"
    return args.backend


def _chunk_tasks_arg(raw: str) -> "int | str":
    """``--chunk-tasks`` flag adapter over the one shared knob parser."""
    try:
        return parse_chunk_tasks(raw)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def add_scheduling_arguments(parser: argparse.ArgumentParser) -> None:
    """The shard-scheduling knobs shared by both CLIs."""
    parser.add_argument("--schedule", default=None, choices=SCHEDULE_MODES,
                        help="shard dispatch order: lpt (longest first, "
                             "priced by the cost model; default) or fifo "
                             "(enumeration order).  The dataset is "
                             "byte-identical either way")
    parser.add_argument("--chunk-tasks", type=_chunk_tasks_arg, default=None,
                        metavar="N|auto",
                        help="split shards larger than N tasks into "
                             "sub-shard chunks ('auto' sizes chunks from "
                             "the executor width; default: "
                             "REPRO_CHUNK_TASKS or no chunking).  "
                             "Byte-transparent like --schedule")
    parser.add_argument("--profile-shards", action="store_true",
                        help="print a per-shard wall-time table after the "
                             "run, stragglers first")


def render_shard_table(report: CurationRunReport) -> str:
    """The ``--profile-shards`` table: dispatched shards, stragglers first."""
    header = (
        f"{'city':<16}{'isp':<13}{'tasks':>7}{'chunks':>8}"
        f"{'wall_s':>9}{'predicted':>11}  source"
    )
    lines = [header, "-" * len(header)]
    rows = sorted(
        report.shard_timings, key=lambda t: (-t.wall_seconds, t.city, t.isp)
    )
    for timing in rows:
        lines.append(
            f"{timing.city:<16}{timing.isp:<13}{timing.tasks:>7d}"
            f"{timing.chunks:>8d}{timing.wall_seconds:>9.2f}"
            f"{timing.predicted_seconds:>11.1f}  {timing.cost_source}"
        )
    if not rows:
        lines.append("(no shards were dispatched — everything came "
                     "from cache)")
    return "\n".join(lines)


def render_store_table(store) -> str:
    """The ``cache ls`` listing: manifest entries (LRU order) + costs.

    Shows exactly what a warm worker would ship for each shard — the
    entry a coordinator promotes into its own cache — so an operator can
    audit a shared cache root without parsing the manifest by hand.
    """
    entries = store.entries()
    header = (
        f"{'digest':<14}{'city':<16}{'isp':<13}{'seed':>6}{'scale':>7}  "
        f"{'config':<10}{'obs':>6}{'bytes':>10}{'lru':>5}"
    )
    lines = [header, "-" * len(header)]
    for entry in entries:
        meta = entry.meta
        lines.append(
            f"{entry.digest[:12]:<14}{meta.city:<16}{meta.isp:<13}"
            f"{meta.seed:>6d}{meta.scale:>7.2f}  "
            f"{(meta.config_digest[:8] or '-'):<10}"
            f"{entry.n_observations:>6d}{entry.n_bytes:>10d}{entry.access:>5d}"
        )
    if not entries:
        lines.append("(store is empty)")
    lines.append(
        f"total: {len(entries)} entries, {store.total_bytes()} bytes"
        + (f" (cap {store.max_bytes})" if store.max_bytes else "")
    )
    costs = store.cost_records()
    if costs:
        lines.append("")
        cost_header = (
            f"{'city':<16}{'isp':<13}{'tasks':>7}{'wall_s':>9}{'pacing':>10}"
        )
        lines.extend([cost_header, "-" * len(cost_header)])
        for record in costs:
            lines.append(
                f"{record.city:<16}{record.isp:<13}{record.task_count:>7d}"
                f"{record.wall_seconds:>9.2f}{record.pacing_time_scale:>10.5f}"
            )
        lines.append(f"cost records: {len(costs)}")
    return "\n".join(lines)


def print_run_summary(pipeline: CurationPipeline, profile: bool) -> None:
    """Cache/schedule accounting lines both CLI paths print after a run."""
    run = pipeline.last_run
    print(f"cache: replayed {run.replayed_queries} queries; "
          f"{run.cached_shards}/{run.total_shards} shards cached "
          f"({run.disk_shards} from disk)")
    print(f"schedule: {run.schedule}; {run.executed_shards} shards as "
          f"{run.dispatched_units} dispatch units "
          f"({run.chunked_shards} chunked) on the {run.backend} backend")
    if profile:
        print()
        print(render_shard_table(run))


def render_cache_stats() -> str:
    """One ``cache-stats:`` line per memoized hot-path helper.

    Every ``lru_cache`` the single-query CPU path leans on, so a
    ``--profile-cpu`` run shows at a glance which memos are earning their
    keep (hits), thrashing (evictions against maxsize), or cold.
    """
    from ..bat import pages, profiles
    from ..core import dom, parsing
    from ..isp import plans
    from .columnar import columnar_cache_stats

    stats: dict[str, object] = {
        "profiles.profile_for": profiles.profile_for.cache_info(),
        "pages.render_home": pages.render_home.cache_info(),
        "pages.render_technical_error":
            pages.render_technical_error.cache_info(),
        "plans.catalog_for": plans.catalog_for.cache_info(),
        "plans.dsl_plans": plans.dsl_plans.cache_info(),
        "plans.fiber_plans": plans.fiber_plans.cache_info(),
        "parsing.plans_from_markup": parsing.plans_from_markup.cache_info(),
        "dom.parse_html_cached": dom.parse_html_cached.cache_info(),
    }
    stats.update(columnar_cache_stats())
    width = max(len(name) for name in stats)
    return "\n".join(
        f"cache-stats: {name:<{width}}  hits={info.hits} "
        f"misses={info.misses} size={info.currsize}/{info.maxsize}"
        for name, info in stats.items()
    )


def print_cpu_profile(profiler, top: int = 25) -> None:
    """The ``--profile-cpu`` report: pstats top-N + memo cache counters."""
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    print()
    print(f"--- cpu profile (top {top} by cumulative time) ---")
    print(stream.getvalue().rstrip())
    print()
    print(render_cache_stats())
