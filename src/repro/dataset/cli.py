"""Shared command-line plumbing for the curation and experiment CLIs.

Lives outside ``__main__`` so ``python -m repro.dataset`` (which loads
that module as ``__main__``) and library importers (``repro.experiments.
__main__``, tests) see one module instance instead of two.
"""

from __future__ import annotations

import argparse

from ..errors import ConfigurationError
from ..exec.schedule import SCHEDULE_MODES, parse_chunk_tasks
from .curation import CurationPipeline, CurationRunReport

__all__ = [
    "add_scheduling_arguments",
    "render_shard_table",
    "print_run_summary",
]


def _chunk_tasks_arg(raw: str) -> "int | str":
    """``--chunk-tasks`` flag adapter over the one shared knob parser."""
    try:
        return parse_chunk_tasks(raw)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def add_scheduling_arguments(parser: argparse.ArgumentParser) -> None:
    """The shard-scheduling knobs shared by both CLIs."""
    parser.add_argument("--schedule", default=None, choices=SCHEDULE_MODES,
                        help="shard dispatch order: lpt (longest first, "
                             "priced by the cost model; default) or fifo "
                             "(enumeration order).  The dataset is "
                             "byte-identical either way")
    parser.add_argument("--chunk-tasks", type=_chunk_tasks_arg, default=None,
                        metavar="N|auto",
                        help="split shards larger than N tasks into "
                             "sub-shard chunks ('auto' sizes chunks from "
                             "the executor width; default: "
                             "REPRO_CHUNK_TASKS or no chunking).  "
                             "Byte-transparent like --schedule")
    parser.add_argument("--profile-shards", action="store_true",
                        help="print a per-shard wall-time table after the "
                             "run, stragglers first")


def render_shard_table(report: CurationRunReport) -> str:
    """The ``--profile-shards`` table: dispatched shards, stragglers first."""
    header = (
        f"{'city':<16}{'isp':<13}{'tasks':>7}{'chunks':>8}"
        f"{'wall_s':>9}{'predicted':>11}  source"
    )
    lines = [header, "-" * len(header)]
    rows = sorted(
        report.shard_timings, key=lambda t: (-t.wall_seconds, t.city, t.isp)
    )
    for timing in rows:
        lines.append(
            f"{timing.city:<16}{timing.isp:<13}{timing.tasks:>7d}"
            f"{timing.chunks:>8d}{timing.wall_seconds:>9.2f}"
            f"{timing.predicted_seconds:>11.1f}  {timing.cost_source}"
        )
    if not rows:
        lines.append("(no shards were dispatched — everything came "
                     "from cache)")
    return "\n".join(lines)


def print_run_summary(pipeline: CurationPipeline, profile: bool) -> None:
    """Cache/schedule accounting lines both CLI paths print after a run."""
    run = pipeline.last_run
    print(f"cache: replayed {run.replayed_queries} queries; "
          f"{run.cached_shards}/{run.total_shards} shards cached "
          f"({run.disk_shards} from disk)")
    print(f"schedule: {run.schedule}; {run.executed_shards} shards as "
          f"{run.dispatched_units} dispatch units "
          f"({run.chunked_shards} chunked) on the {run.backend} backend")
    if profile:
        print()
        print(render_shard_table(run))
