"""``python -m repro.dataset worker``: the remote curation worker.

The worker is the serve-loop half of the distributed backend: a
coordinator (``--backend remote``) ships serialized
:class:`~repro.exec.spec.ShardSpec` units over :mod:`repro.net.rpc`; the
worker rehydrates each spec into the exact same city ground truth and
task sample the coordinator would have built, replays it through
:func:`~repro.exec.spec.run_shard_spec`, and answers with a
:class:`~repro.exec.store.DiskShardStore`-format entry blob — the disk
tier's wire format, which the coordinator promotes straight into its own
two-tier cache.

With ``--cache-dir`` the worker keeps a disk store of its own: a spec
whose content-addressed keys are already present is answered from the
store without replaying a query (``cached: true`` in the reply), so a
warm worker's cost is the transfer, not the computation.  Several workers
(and the coordinator) may share one store root — manifest writes are
serialized by the store's cross-process lock.

Concurrency is connection-shaped: the RPC server runs each connection on
its own thread, and the coordinator opens as many connections as the
worker advertises in its ping reply (``--width``).  Spec execution builds
fresh per-shard state, so concurrent replays never share mutable
objects; the city/task memos behind them are lock-guarded.

RPC methods served:

========= ============================================================
``ping``      ``{"ok", "width", "store", "pid", "specs_run"}``
``run_shard`` ``{"spec": <wire spec>}`` -> ``{"entry", "wall_seconds",
              "cached"}``
``stats``     running counters (specs run, cache hits, store size)
``shutdown``  acknowledges, then stops the serve loop
========= ============================================================
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

from ..exec.base import default_max_workers
from ..exec.membership import (
    CoordinatorLink,
    parse_coordinator_address,
    worker_identity,
)
from ..exec.spec import (
    ShardSpec,
    full_shard_tasks,
    run_shard_spec,
    spec_cache_keys,
    spec_from_wire,
)
from ..exec.store import (
    STORE_VERSION,
    DiskShardStore,
    ShardCostRecord,
    ShardMeta,
    observation_to_dict,
    shard_digest,
)
from ..net.rpc import RpcServer

__all__ = ["WorkerState", "worker_main"]


class WorkerState:
    """Counters + optional disk store shared by the RPC handlers."""

    def __init__(
        self,
        width: int,
        store: DiskShardStore | None = None,
        exit_after: int | None = None,
        crash_after: int | None = None,
    ) -> None:
        self.width = width
        self.store = store
        self.exit_after = exit_after
        self.crash_after = crash_after
        self.specs_run = 0
        self.cache_hits = 0
        self.requests = 0
        self.lock = threading.Lock()
        self.shutdown = threading.Event()
        # Graceful-exit hook (--exit-after): set once the Nth run_shard
        # has been *answered*; the serve loop then deregisters from any
        # joined coordinator and stops cleanly — the distinct-from-crash
        # path the membership directory records as ``left``.
        self.drain = threading.Event()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def handle_ping(self, _payload: dict) -> dict:
        return {
            "ok": True,
            "width": self.width,
            "store": self.store is not None,
            "pid": os.getpid(),
            "specs_run": self.specs_run,
        }

    def handle_stats(self, _payload: dict) -> dict:
        reply = {
            "specs_run": self.specs_run,
            "cache_hits": self.cache_hits,
            "requests": self.requests,
        }
        if self.store is not None:
            reply["store_entries"] = len(self.store)
            reply["store_bytes"] = self.store.total_bytes()
        return reply

    def handle_shutdown(self, _payload: dict) -> dict:
        self.shutdown.set()
        return {"ok": True}

    def handle_run_shard(self, payload: dict) -> dict:
        with self.lock:
            self.requests += 1
            if (
                self.crash_after is not None
                and self.requests > self.crash_after
            ):
                # Chaos hook for the re-queue regression tests: die the
                # hard way, mid-request, without answering — exactly what
                # an OOM-killed or power-cycled worker looks like.
                os._exit(17)
        spec = spec_from_wire(payload["spec"])
        tasks = full_shard_tasks(spec)[spec.start : spec.stop]
        # An empty config digest means the coordinator could not scope
        # this spec to a configuration; serving or storing it would risk
        # cross-configuration aliasing, so caching is skipped entirely.
        keys = (
            spec_cache_keys(spec, tasks) if spec.config_digest else ()
        )

        if self.store is not None and keys:
            stored = self.store.get(keys)
            if stored is not None and len(stored) == len(keys):
                with self.lock:
                    self.cache_hits += 1
                self._maybe_drain()
                return self._reply(
                    spec, keys, stored, self._stored_wall(spec, tasks), True
                )

        observations, wall_seconds = run_shard_spec(
            replace(spec, tasks=tuple(tasks))
        )
        with self.lock:
            self.specs_run += 1
        if self.store is not None and keys:
            self.store.put(
                keys,
                observations,
                meta=ShardMeta(
                    city=spec.city,
                    isp=spec.isp,
                    seed=spec.world.seed,
                    scale=spec.world.scale,
                    config_digest=spec.config_digest,
                ),
            )
            if len(tasks) == len(full_shard_tasks(spec)):
                # Whole-shard observation: remember its serial replay
                # cost so later cache hits can report the *execution*
                # wall time (the number the coordinator's cost model
                # wants), not the microseconds the lookup took.
                self.store.record_cost(
                    ShardCostRecord(
                        city=spec.city,
                        isp=spec.isp,
                        config_digest=spec.config_digest,
                        wall_seconds=wall_seconds,
                        task_count=len(tasks),
                        pacing_time_scale=spec.config.pacing_time_scale,
                    )
                )
                self.store.flush()
        self._maybe_drain()
        return self._reply(spec, keys, observations, wall_seconds, False)

    # ------------------------------------------------------------------
    def _maybe_drain(self) -> None:
        """Trip the graceful-exit latch once ``--exit-after`` is reached.

        Called with the reply already computed, so the Nth request is
        fully *answered* before the serve loop starts tearing down; a
        straggler request that slips in during the short teardown window
        is simply served too — specs are idempotent, and refusing it
        would surface as a (fatal) deterministic remote error.
        """
        if self.exit_after is not None and not self.drain.is_set():
            with self.lock:
                reached = self.requests >= self.exit_after
            if reached:
                self.drain.set()

    def _stored_wall(self, spec: ShardSpec, tasks) -> float:
        """Best-effort execution cost of a cache-served spec."""
        if self.store is None:
            return 0.0
        record = self.store.cost_for(spec.city, spec.isp)
        if (
            record is not None
            and record.config_digest == spec.config_digest
            and record.task_count == len(tasks)
            and record.pacing_time_scale == spec.config.pacing_time_scale
        ):
            return record.wall_seconds
        return 0.0

    @staticmethod
    def _reply(
        spec: ShardSpec, keys, observations, wall_seconds: float, cached: bool
    ) -> dict:
        return {
            "entry": {
                "version": STORE_VERSION,
                "digest": shard_digest(keys) if keys else "",
                "keys": list(keys),
                "meta": {
                    "city": spec.city,
                    "isp": spec.isp,
                    "seed": spec.world.seed,
                    "scale": spec.world.scale,
                    "config_digest": spec.config_digest,
                },
                "observations": [
                    observation_to_dict(obs) for obs in observations
                ],
            },
            "wall_seconds": wall_seconds,
            "cached": cached,
        }


def worker_main(argv: list[str]) -> int:
    """Entry point for the ``worker`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.dataset worker",
        description="Serve curation shard specs to a remote-backend "
                    "coordinator (`--backend remote "
                    "--remote-workers host:port,...`).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: loopback)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind (default 0: let the OS pick; "
                             "the bound address is printed on stdout)")
    parser.add_argument("--width", type=int, default=None,
                        help="how many specs this worker runs "
                             "concurrently — advertised to coordinators, "
                             "which open that many connections (default: "
                             "the host's CPU count, floored at two)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="optional on-disk shard store: specs whose "
                             "keys are already present are served "
                             "without replaying a query.  May be shared "
                             "with other workers/the coordinator")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="LRU byte cap for the worker store")
    parser.add_argument("--join", default=None, metavar="HOST:PORT",
                        help="join the elastic fleet: register with the "
                             "membership coordinator at HOST:PORT and "
                             "heartbeat until shutdown (the coordinator "
                             "side is `--backend remote --elastic`)")
    parser.add_argument("--heartbeat-interval", type=float, default=None,
                        help="initial beat cadence for --join, seconds "
                             "(the coordinator's registration reply "
                             "overrides it)")
    parser.add_argument("--join-fault-profile", default=None,
                        help="chaos knob: fault-injection spec for the "
                             "membership link only (register/heartbeat "
                             "frames), so heartbeat loss is testable "
                             "without touching the spec data path")
    # Chaos hooks for the elasticity/re-queue tests: --exit-after N
    # drains *gracefully* (answer N run_shard requests, deregister from
    # any joined coordinator, exit 0); --crash-after N dies the hard way
    # (os._exit mid-request N+1, no goodbye) so death-by-missed-beats
    # stays separately observable from a clean leave.
    parser.add_argument("--exit-after", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--crash-after", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--fault-profile", default=None,
                        help="chaos knob: a fault-injection spec for this "
                             "worker's server-side frames, e.g. "
                             "'seed=7,server.drop=0.05' (overrides "
                             "REPRO_FAULT_PROFILE; 'off' disables). See "
                             "repro.net.faults for the spec grammar")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="refuse RPC calls beyond this many in flight "
                             "with 503 + Retry-After instead of queueing "
                             "them (default: unbounded).  Coordinators "
                             "back off and re-queue refused specs at the "
                             "back of the line")
    args = parser.parse_args(argv)

    width = args.width if args.width is not None else default_max_workers()
    if width < 1:
        parser.error("--width must be >= 1")
    store = (
        DiskShardStore(args.cache_dir, max_bytes=args.cache_max_bytes)
        if args.cache_dir is not None
        else None
    )
    state = WorkerState(
        width,
        store=store,
        exit_after=args.exit_after,
        crash_after=args.crash_after,
    )
    server = RpcServer(
        {
            "ping": state.handle_ping,
            "run_shard": state.handle_run_shard,
            "stats": state.handle_stats,
            "shutdown": state.handle_shutdown,
        },
        host=args.host,
        port=args.port,
        fault_profile=args.fault_profile,
        max_inflight=args.max_inflight,
    )
    server.start()
    host, port = server.address
    link = None
    if args.join is not None:
        link = CoordinatorLink(
            parse_coordinator_address(args.join),
            worker_identity(host, port),
            announce={
                "host": host,
                "port": port,
                "width": width,
                "store": store is not None,
                "pid": os.getpid(),
            },
            interval=args.heartbeat_interval,
            fault_profile=args.join_fault_profile,
        ).start()
    print(
        f"repro worker pid {os.getpid()} listening on {host}:{port} "
        f"(width {width}, store: "
        f"{store.root if store is not None else 'none'}"
        + (f", joined {args.join}" if args.join is not None else "")
        + ")",
        flush=True,
    )
    try:
        while not state.shutdown.is_set() and not state.drain.is_set():
            state.shutdown.wait(timeout=0.5)
            if state.drain.is_set():
                break
    except KeyboardInterrupt:
        pass
    finally:
        if state.drain.is_set():
            # --exit-after: the Nth reply was computed inside the handler
            # but is written by the connection thread after it returns;
            # give that write a beat to flush before severing sockets.
            time.sleep(0.3)
        if link is not None:
            # Graceful goodbye: the directory records ``left``, not a
            # death by missed beats.  Crash paths (--crash-after,
            # SIGKILL) never run this line — that asymmetry is the
            # point.
            link.stop(deregister=True)
        server.stop()
        if store is not None:
            store.flush()
    print(
        f"repro worker pid {os.getpid()} stopped after {state.specs_run} "
        f"specs ({state.cache_hits} cache hits)",
        flush=True,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(worker_main(sys.argv[1:]))
