"""The curation pipeline: world + BQT fleet -> broadband dataset.

This is the paper's Section 4 methodology end to end: stratified sampling
from the residential feed, fleet-scale BQT querying against the BAT
servers, and assembly into the curated dataset.  The pipeline consumes
**only** the address feed and the HTTP transport — ground-truth deployment
objects are never touched, so every analysis result downstream is a genuine
measurement of the simulated ISPs.

Execution is sharded by (city, ISP) pair, mirroring how the paper split
collection across its container fleet.  Every shard is a *pure function*
of the world configuration and seeds derived from ``(city, ISP)``: it gets
its own fleet, its own residential proxy pool, and its own transport + BAT
server instance (fresh RTT sampler, render-delay stream, session table and
rate-limit windows).  Shards therefore run in any order — or in parallel
on any :mod:`repro.exec` backend — and the merged dataset is byte-identical
to a serial run.  A :class:`~repro.exec.cache.QueryResultCache` can be
attached to skip replaying shards whose content-addressed keys are already
known.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from ..addresses.database import AddressIndex
from ..addresses.noise import NoisyAddress
from ..bat.app import BatApplication
from ..bat.profiles import profile_for
from ..core.orchestrator import ContainerFleet
from ..core.workflow import QueryResult
from ..errors import DatasetError
from ..exec.base import Executor, resolve_executor
from ..exec.cache import QueryResultCache, shard_cache_keys
from ..exec.schedule import (
    SCHEDULE_MODES,
    ShardCostModel,
    calibrate_costs,
    chunk_spans,
    default_chunk_tasks,
    default_schedule,
    lpt_order,
    resolve_chunk_tasks,
)
from ..exec.spec import ShardSpec, release_city_worlds, seed_city_worlds
from ..exec.store import ShardCostRecord, ShardMeta
from ..net.proxy import ResidentialProxyPool
from ..net.transport import InProcessTransport
from ..seeding import derive_seed
from ..world import (
    CityWorld,
    World,
    WorldConfig,
    offer_resolver,
)
from .container import BroadbandDataset
from .records import AddressObservation, PlanObservation
from .sampling import SamplingConfig, sample_city

__all__ = [
    "CurationConfig",
    "CurationPipeline",
    "CurationRunReport",
    "IspOverride",
    "ShardTiming",
    "curation_base_digest",
    "hash_address_id",
    "shard_config_digest",
]


def hash_address_id(street_line: str, zip_code: str, salt: str) -> str:
    """Privacy-preserving address identifier (salted SHA-256, 16 hex chars)."""
    digest = hashlib.sha256(f"{salt}|{street_line}|{zip_code}".encode()).hexdigest()
    return digest[:16]


def curation_base_digest(world_config: WorldConfig, config: "CurationConfig") -> str:
    """Digest of the world-wide curation inputs every shard shares.

    Per-ISP knobs are deliberately excluded — they enter each shard's
    digest individually via :func:`shard_config_digest`, so a change
    scoped to one ISP invalidates only that ISP's shards.  Seed and scale
    are excluded too: they are part of every address-level cache key
    already.  A module-level function (not a pipeline method) because
    remote workers must derive the identical digest from a rehydrated
    :class:`~repro.exec.spec.ShardSpec` with no pipeline in sight.
    """
    parts = (
        repr(config.sampling),
        config.salt,
        repr(world_config.latency),
        repr(world_config.addresses),
        repr(world_config.deployment),
        repr(world_config.offers),
    )
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


def shard_config_digest(
    world_config: WorldConfig,
    config: "CurationConfig",
    city: str,
    isp: str,
    base: str | None = None,
) -> str:
    """Config digest of one (city, ISP) shard.

    Combines the world-wide base digest with the shard coordinates and
    the *effective* per-ISP knobs (fleet size, politeness).  This is the
    unit of incremental re-curation: a shard whose digest is unchanged is
    loaded from cache; a changed digest means stale and the shard — only
    that shard — is re-dispatched.  ``base`` can be passed to amortize
    the base-digest hash over a run's shards.
    """
    if base is None:
        base = curation_base_digest(world_config, config)
    parts = (
        base,
        city,
        isp,
        str(config.effective_n_workers(isp)),
        repr(config.effective_politeness(isp)),
    )
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


@dataclass(frozen=True)
class IspOverride:
    """Per-ISP deviations from the global curation knobs.

    Fields left None inherit the global :class:`CurationConfig` value.
    Overrides are part of that ISP's shard digest — and *only* that
    ISP's — so tweaking one ISP's fleet size or politeness re-curates
    exactly the shards it affects (incremental re-curation).
    """

    n_workers: int | None = None
    politeness_seconds: float | None = None


@dataclass(frozen=True)
class CurationConfig:
    """Pipeline knobs.

    Attributes:
        sampling: Stratified-sampling parameters (10% / min 30 by default).
        n_workers: BQT fleet size per (city, ISP) shard.  The paper uses
            50-100 containers and verified up to 200 leave ISP response
            times unaffected.
        politeness_seconds: Per-worker pause between queries.
        salt: Salt for the privacy-preserving address hash.
        per_isp: ``(isp, IspOverride)`` pairs overriding fleet size or
            politeness for individual ISPs.  Stored as a tuple so the
            config stays hashable/picklable; use :meth:`with_isp_override`
            to derive one.
        pacing_time_scale: Real seconds slept per simulated second of
            request latency (see :class:`~repro.net.transport.
            InProcessTransport`).  0.0 (the default) runs at CPU speed;
            a non-zero scale makes shard wall time track virtual time —
            the regime the scheduler benchmarks measure.  Deliberately
            excluded from shard config digests: pacing never changes a
            single observation byte.  Pair pacing with the thread
            backend: on the ``"async"`` backend the blocking pacing
            sleep runs on the event-loop thread and serializes every
            dispatch unit (results stay byte-identical; only wall time
            suffers).
    """

    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    n_workers: int = 50
    politeness_seconds: float = 5.0
    salt: str = "bqt-release"
    per_isp: tuple[tuple[str, IspOverride], ...] = ()
    pacing_time_scale: float = 0.0

    def with_isp_override(
        self,
        isp: str,
        n_workers: int | None = None,
        politeness_seconds: float | None = None,
    ) -> "CurationConfig":
        """A copy of this config with one ISP's knobs overridden."""
        kept = tuple(pair for pair in self.per_isp if pair[0] != isp)
        override = IspOverride(
            n_workers=n_workers, politeness_seconds=politeness_seconds
        )
        return replace(
            self,
            per_isp=tuple(
                sorted(kept + ((isp, override),), key=lambda pair: pair[0])
            ),
        )

    def _override_for(self, isp: str) -> IspOverride | None:
        for name, override in self.per_isp:
            if name == isp:
                return override
        return None

    def effective_n_workers(self, isp: str) -> int:
        override = self._override_for(isp)
        if override is not None and override.n_workers is not None:
            return override.n_workers
        return self.n_workers

    def effective_politeness(self, isp: str) -> float:
        override = self._override_for(isp)
        if override is not None and override.politeness_seconds is not None:
            return override.politeness_seconds
        return self.politeness_seconds


@dataclass(frozen=True)
class ShardTiming:
    """Observed execution of one dispatched (city, ISP) shard.

    ``wall_seconds`` is the shard's serial replay cost — the sum of its
    dispatch units' wall times — so the number is comparable whether the
    shard ran whole or chunked, on any backend.  ``predicted_seconds`` and
    ``cost_source`` echo the scheduler's pricing, so a ``--profile-shards``
    table shows both what the scheduler believed and what happened.
    """

    city: str
    isp: str
    tasks: int
    chunks: int
    wall_seconds: float
    predicted_seconds: float
    cost_source: str


@dataclass(frozen=True)
class CurationRunReport:
    """Accounting for the most recent :meth:`CurationPipeline.curate` call.

    Attributes:
        shards: Every (city, ISP) pair the call covered, in merge order.
        cached_shards: Shards served from the cache (either tier).
        disk_shards: The subset of ``cached_shards`` loaded from the
            on-disk store (zero without a disk tier).
        executed_shards: Shards dispatched to the executor.
        replayed_queries: Individual BQT queries actually executed — the
            cost a cache hit avoids.  Zero means the whole dataset came
            from cache without replaying a single query.
        backend: Executor backend name used for the dispatched shards.
        schedule: Dispatch-order mode (``"lpt"`` or ``"fifo"``).
        dispatched_units: Work units sent to the executor — equal to
            ``executed_shards`` when nothing chunked, larger otherwise.
        shard_timings: Per-shard wall-time accounting for the dispatched
            shards, in merge order (``--profile-shards`` renders these).
        index_build_s: Wall time this process spent building city address
            indexes during the call (coordinator-process scope — workers
            in other processes build and account their own).  Lets the
            CPU-path bench attribute time to synthesis vs index vs query.
    """

    shards: tuple[tuple[str, str], ...]
    cached_shards: int
    executed_shards: int
    backend: str
    disk_shards: int = 0
    replayed_queries: int = 0
    schedule: str = "lpt"
    dispatched_units: int = 0
    shard_timings: tuple[ShardTiming, ...] = ()
    index_build_s: float = 0.0

    @property
    def total_shards(self) -> int:
        return len(self.shards)

    @property
    def memory_shards(self) -> int:
        """Cached shards served straight from the in-memory tier."""
        return self.cached_shards - self.disk_shards

    @property
    def chunked_shards(self) -> int:
        """Dispatched shards that were split into more than one chunk."""
        return sum(1 for timing in self.shard_timings if timing.chunks > 1)


def _shard_tasks(
    city_world: CityWorld,
    isp: str,
    sampling: SamplingConfig,
    world_seed: int,
) -> list[NoisyAddress]:
    """Stratified sample for one (city, ISP) shard, flattened to tasks.

    Task order is geoid-sorted and therefore identical however and
    wherever the shard runs.
    """
    samples = sample_city(city_world.book, sampling, world_seed, isp)
    tasks: list[NoisyAddress] = []
    for geoid in sorted(samples):
        tasks.extend(samples[geoid])
    return tasks


# The BAT-side address index is a pure (and fairly expensive) function of
# the city's canonical address book, shared read-only by every shard and
# chunk of that city.  Rebuilding it per dispatch unit would make fine
# chunking pay a per-unit tax proportional to city size — exactly the
# shards chunking exists to speed up — so units share one index per
# (world config, city).  Bounded: curation touches a handful of cities at
# a time, and an evicted index is just rebuilt.
_ADDRESS_INDEX_MEMO: "OrderedDict[tuple[WorldConfig, str], AddressIndex]" = (
    OrderedDict()
)
_ADDRESS_INDEX_MEMO_MAX = 8
_ADDRESS_INDEX_LOCK = threading.Lock()
# Cumulative wall time spent building indexes in THIS process, so the
# run report can attribute index cost separately from query replay.
_INDEX_BUILD_SECONDS = 0.0


def index_build_seconds() -> float:
    """Cumulative address-index build wall time in this process."""
    with _ADDRESS_INDEX_LOCK:
        return _INDEX_BUILD_SECONDS


def _city_address_index(
    world_config: WorldConfig, city_world: CityWorld
) -> AddressIndex:
    """The shared read-only address index of one city.

    Keyed by ``(world_config, city name)``: :func:`repro.world.
    build_city_world` is a pure function of that pair, so any
    ``city_world`` passed alongside the key indexes to identical content.
    Two threads racing on a miss both build equivalent indexes and the
    last write wins — harmless.
    """
    global _INDEX_BUILD_SECONDS
    key = (world_config, city_world.info.name)
    with _ADDRESS_INDEX_LOCK:
        index = _ADDRESS_INDEX_MEMO.get(key)
        if index is not None:
            _ADDRESS_INDEX_MEMO.move_to_end(key)
            return index
    started = time.perf_counter()
    index = AddressIndex(tuple(city_world.book.canonical))
    built = time.perf_counter() - started
    with _ADDRESS_INDEX_LOCK:
        _INDEX_BUILD_SECONDS += built
        _ADDRESS_INDEX_MEMO[key] = index
        _ADDRESS_INDEX_MEMO.move_to_end(key)
        while len(_ADDRESS_INDEX_MEMO) > _ADDRESS_INDEX_MEMO_MAX:
            _ADDRESS_INDEX_MEMO.popitem(last=False)
    return index


def _shard_observations(
    world_config: WorldConfig,
    city_world: CityWorld,
    isp: str,
    config: CurationConfig,
    tasks: list[NoisyAddress] | None = None,
) -> tuple[AddressObservation, ...]:
    """Execute one (city, ISP) shard against fresh per-shard server state.

    The returned observations depend only on ``(world_config, city, isp,
    config)`` — never on sibling shards, execution order, or the backend.
    ``tasks`` may be supplied by a caller that already sampled the shard
    (the cache-keying path); it must equal ``_shard_tasks(...)``.

    This is the hot-path dispatcher: shards first try the columnar fast
    path (:func:`repro.dataset.columnar.run_shard_columnar`), which
    synthesizes the branch-free majority of tasks as whole-shard numpy
    operations and replays only DOM-branching tasks through the scalar
    fleet — byte-identical output either way, pinned by the golden
    parity suite.  ``REPRO_COLUMNAR=0`` forces everything scalar.
    """
    seed = world_config.seed
    if tasks is None:
        tasks = _shard_tasks(city_world, isp, config.sampling, seed)
    if not tasks:
        return ()

    from .columnar import columnar_enabled, run_shard_columnar

    if columnar_enabled():
        observations = run_shard_columnar(
            world_config, city_world, isp, config, tasks
        )
        if observations is not None:
            return observations
    return _scalar_shard_observations(
        world_config, city_world, isp, config, tasks
    )


def _scalar_shard_observations(
    world_config: WorldConfig,
    city_world: CityWorld,
    isp: str,
    config: CurationConfig,
    tasks: list[NoisyAddress],
) -> tuple[AddressObservation, ...]:
    """The scalar replay: a real fleet against fresh per-shard servers.

    The shard's transport, BAT application, proxy pool and fleet are all
    constructed here from seeds derived from ``(city, ISP)``.  Also the
    fallback engine for task subsets the columnar path cannot synthesize
    — per-task content keying makes any subset replay byte-identically.
    """
    city = city_world.info.name
    seed = world_config.seed
    transport = InProcessTransport(
        latency=world_config.latency,
        seed=derive_seed(seed, "curation-transport", city, isp),
        time_scale=config.pacing_time_scale,
    )
    transport.register(
        BatApplication(
            profile=profile_for(isp),
            index=_city_address_index(world_config, city_world),
            offers=offer_resolver({city: city_world}, isp),
            seed=seed,
        )
    )

    n_workers = min(config.effective_n_workers(isp), max(1, len(tasks)))
    fleet = ContainerFleet(
        transport,
        n_workers=n_workers,
        seed=derive_seed(seed, "curation-fleet", city, isp),
        proxy_pool=ResidentialProxyPool(
            n_workers, seed=derive_seed(seed, "curation-pool", city, isp)
        ),
        politeness_seconds=config.effective_politeness(isp),
    )
    report = fleet.run(
        [(isp, entry.street_line, entry.zip_code) for entry in tasks]
    )

    def observation(entry: NoisyAddress, result: QueryResult) -> AddressObservation:
        return AddressObservation(
            address_id=hash_address_id(
                entry.truth.street_line(), entry.truth.zip_code, config.salt
            ),
            city=entry.city,
            block_group=entry.truth.block_group,
            isp=result.isp,
            status=result.status,
            plans=tuple(PlanObservation.from_observed(p) for p in result.plans),
            elapsed_seconds=result.elapsed_seconds,
        )

    return tuple(
        observation(entry, result)
        for entry, result in zip(tasks, report.results)
    )


# ----------------------------------------------------------------------
# Dispatch plumbing
# ----------------------------------------------------------------------
# The dispatch unit itself — the serializable ShardSpec and its
# run_shard_spec entry point — lives in repro.exec.spec: every backend
# (including remote workers in other processes on other machines) runs
# the same entry point over the same pure data.  What remains here is the
# per-curate() bookkeeping that turns a world + config into specs.


@dataclass(frozen=True)
class _ShardPlan:
    """One shard as scheduled by a concrete ``curate()`` call."""

    city: str
    isp: str
    city_world: CityWorld
    cache_keys: tuple[str, ...]
    # The shard's sampled tasks in canonical (geoid-sorted) order; the
    # scheduler's chunk spans slice this list, and the thread/async/serial
    # paths replay it directly.
    tasks: tuple[NoisyAddress, ...] | None = None
    # Config digest of this shard (incremental re-curation unit); labels
    # the entry in the disk manifest.
    config_digest: str = ""


@dataclass(frozen=True)
class _DispatchUnit:
    """One executor work item: a contiguous slice of one pending shard."""

    plan_index: int
    start: int
    stop: int
    cost: float


class CurationPipeline:
    """Runs the full data-collection methodology against a world.

    Args:
        world: The simulated measurement environment.
        config: Pipeline knobs (sampling, fleet size, politeness, salt).
        executor: Execution backend for (city, ISP) shards — an
            :class:`~repro.exec.Executor`, a backend name (``"serial"``,
            ``"thread"``, ``"process"``, ``"async"``), or None for
            serial.  Every backend produces the same dataset, byte for
            byte.
        cache: Optional :class:`~repro.exec.QueryResultCache`; shards whose
            content-addressed keys are fully present are served from it
            without replaying any queries.
        schedule: Dispatch-order mode — ``"lpt"`` (longest processing time
            first, priced by the cost model; the default) or ``"fifo"``
            (enumeration order).  Execution-only: the merged dataset is
            byte-identical either way.
        chunk_tasks: Sub-shard chunk cap — None (never split), an integer
            task count, or ``"auto"`` (size chunks from the executor
            width).  Execution-only, like ``schedule``: a chunk replays
            exactly the observations its span of the whole-shard run
            would produce.
    """

    def __init__(
        self,
        world: World,
        config: CurationConfig | None = None,
        executor: Executor | str | None = None,
        cache: QueryResultCache | None = None,
        schedule: str | None = None,
        chunk_tasks: int | str | None = None,
    ) -> None:
        self._world = world
        self.config = config or CurationConfig()
        self.executor = resolve_executor(executor)
        self.cache = cache
        self.schedule = schedule if schedule is not None else default_schedule()
        if self.schedule not in SCHEDULE_MODES:
            raise DatasetError(
                f"unknown schedule mode {self.schedule!r} "
                f"(available: {', '.join(SCHEDULE_MODES)})"
            )
        self.chunk_tasks = (
            chunk_tasks if chunk_tasks is not None else default_chunk_tasks()
        )
        self.last_run: CurationRunReport | None = None

    # ------------------------------------------------------------------
    # Curation
    # ------------------------------------------------------------------
    def curate(
        self,
        cities: tuple[str, ...] | None = None,
        isps: tuple[str, ...] | None = None,
    ) -> BroadbandDataset:
        """Collect the dataset for the requested cities and ISPs.

        Defaults to every city in the world and every major ISP active in
        each city (the paper's full methodology).  Shards are merged in
        (city, ISP) schedule order, so the record order — like the records
        themselves — is independent of the execution backend.
        """
        index_build_start = index_build_seconds()
        target_cities = cities if cities is not None else tuple(self._world.cities)
        shards: list[tuple[str, str]] = []
        for city in target_cities:
            city_world = self._world.city(city)
            for isp in city_world.info.isps:
                if isps is None or isp in isps:
                    shards.append((city, isp))
        if not shards:
            raise DatasetError("no (city, ISP) pairs matched the curation request")

        # Every shard's config digest is computed up front; it decides —
        # together with the address-level keys it feeds — whether the
        # shard is fresh (served from cache) or stale (re-dispatched).
        # Digests are computed even without a coordinator-side cache: they
        # ride on every dispatched spec, where they scope worker-side
        # store reuse.  Tasks are always sampled here: the scheduler
        # prices shards by task count and slices the canonical task list
        # into chunks.
        world_config = self._world.config
        base = curation_base_digest(world_config, self.config)
        plans: list[_ShardPlan] = []
        for city, isp in shards:
            city_world = self._world.city(city)
            keys: tuple[str, ...] = ()
            digest = shard_config_digest(
                world_config, self.config, city, isp, base=base
            )
            tasks = tuple(
                _shard_tasks(
                    city_world, isp, self.config.sampling, world_config.seed
                )
            )
            if self.cache is not None:
                keys = shard_cache_keys(
                    isp, tasks, world_config.seed, world_config.scale, digest
                )
            plans.append(
                _ShardPlan(city, isp, city_world, keys, tasks, digest)
            )

        # Serve whole shards from the cache; replay the rest.
        results: dict[int, tuple[AddressObservation, ...]] = {}
        pending: list[tuple[int, _ShardPlan]] = []
        disk_shards = 0
        for index, plan in enumerate(plans):
            cached = None
            if self.cache is not None:
                before = self.cache.stats.disk_shard_hits
                cached = self.cache.lookup_shard(plan.cache_keys)
                disk_shards += self.cache.stats.disk_shard_hits - before
            if cached is not None:
                results[index] = cached
            else:
                pending.append((index, plan))

        replayed = 0
        timings: tuple[ShardTiming, ...] = ()
        dispatched_units = 0
        if pending:
            executed, timings, dispatched_units = self._execute(
                [plan for _, plan in pending]
            )
            world_config = self._world.config
            for (index, plan), observations in zip(pending, executed):
                results[index] = observations
                replayed += len(observations)
                if self.cache is not None:
                    self.cache.store_shard(
                        plan.cache_keys,
                        observations,
                        meta=ShardMeta(
                            city=plan.city,
                            isp=plan.isp,
                            seed=world_config.seed,
                            scale=world_config.scale,
                            config_digest=plan.config_digest,
                        ),
                    )
            self._record_costs(timings, [plan for _, plan in pending])

        self.last_run = CurationRunReport(
            shards=tuple(shards),
            cached_shards=len(plans) - len(pending),
            executed_shards=len(pending),
            backend=self.executor.name,
            disk_shards=disk_shards,
            replayed_queries=replayed,
            schedule=self.schedule,
            dispatched_units=dispatched_units,
            shard_timings=timings,
            index_build_s=index_build_seconds() - index_build_start,
        )
        merged: list[AddressObservation] = []
        for index in range(len(plans)):
            merged.extend(results[index])
        return BroadbandDataset(tuple(merged))

    def _schedule_units(
        self, plans: list[_ShardPlan]
    ) -> tuple[list[_DispatchUnit], list[ShardTiming | None]]:
        """Price, chunk, and LPT-order the pending shards.

        Returns the dispatch units in dispatch order plus a per-plan
        timing skeleton carrying the scheduler's predictions (filled with
        observed wall times after execution).
        """
        cost_model = ShardCostModel(
            self.cache.store if self.cache is not None else None
        )
        total_tasks = sum(len(plan.tasks or ()) for plan in plans)
        cap = resolve_chunk_tasks(
            self.chunk_tasks, total_tasks, self.executor.width
        )

        politeness = [
            self.config.effective_politeness(plan.isp) for plan in plans
        ]
        # The cost model prices whole-shard *specs* — the same pure data a
        # dispatch unit is made of — so remote dispatchers and this
        # pipeline reason about identical objects.
        costs = [
            cost_model.spec_cost(
                self._whole_shard_spec(plan), task_count=len(plan.tasks or ())
            )
            for plan in plans
        ]
        # Observed costs are real seconds, estimates virtual seconds;
        # rescale the estimates so a mixed set sorts in one unit.
        prices = calibrate_costs(costs, politeness)

        units: list[_DispatchUnit] = []
        predictions: list[ShardTiming | None] = []
        for plan_index, plan in enumerate(plans):
            n_tasks = len(plan.tasks or ())
            price = prices[plan_index]
            spans = chunk_spans(n_tasks, cap)
            predictions.append(
                ShardTiming(
                    city=plan.city,
                    isp=plan.isp,
                    tasks=n_tasks,
                    chunks=len(spans),
                    wall_seconds=0.0,
                    predicted_seconds=price,
                    cost_source=costs[plan_index].source,
                )
            )
            for start, stop in spans:
                share = (stop - start) / n_tasks if n_tasks else 0.0
                units.append(
                    _DispatchUnit(plan_index, start, stop, price * share)
                )

        if self.schedule == "lpt":
            order = lpt_order(
                [unit.cost for unit in units],
                [
                    (plans[unit.plan_index].city, plans[unit.plan_index].isp,
                     unit.start)
                    for unit in units
                ],
            )
            units = [units[index] for index in order]
        return units, predictions

    def _whole_shard_spec(self, plan: _ShardPlan) -> ShardSpec:
        """The pure-data spec of one pending shard, span = whole shard."""
        n_tasks = len(plan.tasks or ())
        return ShardSpec(
            world=self._world.config,
            city=plan.city,
            isp=plan.isp,
            config=self.config,
            start=0,
            stop=n_tasks,
            config_digest=plan.config_digest,
        )

    def _execute(
        self, plans: list[_ShardPlan]
    ) -> tuple[
        list[tuple[AddressObservation, ...]],
        tuple[ShardTiming, ...],
        int,
    ]:
        """Dispatch scheduled shard work through the configured backend.

        Shards are priced by the cost model, oversized ones split into
        sub-shard chunks, and the resulting units dispatched longest-first
        (under ``schedule="lpt"``).  Every unit is a serializable
        :class:`~repro.exec.spec.ShardSpec` handed to the backend's
        ``map_specs`` — the same entry point whether the spec runs on this
        thread, in a forked pool, or on a worker machine.  Chunk results
        merge back in canonical span order, so the returned per-plan
        observations — hence the dataset — are byte-identical whatever the
        dispatch order, chunk cap, or backend.
        """
        world_config = self._world.config
        units, predictions = self._schedule_units(plans)

        specs = [
            ShardSpec(
                world=world_config,
                city=plans[unit.plan_index].city,
                isp=plans[unit.plan_index].isp,
                config=self.config,
                start=unit.start,
                stop=unit.stop,
                config_digest=plans[unit.plan_index].config_digest,
                # Local fast path: the span is pre-sliced from the tasks
                # this pipeline already sampled, so no backend re-samples
                # a city per chunk.  Dropped at the wire for remote
                # workers, which re-derive the identical sample.
                tasks=(
                    plans[unit.plan_index].tasks[unit.start : unit.stop]
                    if plans[unit.plan_index].tasks is not None
                    else None
                ),
            )
            for unit in units
        ]
        # Pre-seed the shared city memo with this pipeline's already-built
        # cities: thread/async/serial spec runs share them outright, and
        # fork-started process workers inherit the seeded dict
        # (spawn-started and remote workers rebuild, byte-equivalently).
        seeded = seed_city_worlds(
            {(world_config, plan.city): plan.city_world for plan in plans}
        )
        try:
            outcomes = self.executor.map_specs(specs)
        finally:
            release_city_worlds(seeded)

        # Merge chunk results back per plan in canonical span order, and
        # fold observed wall times into the timing rows.
        by_plan: dict[int, list[tuple[int, tuple[AddressObservation, ...]]]] = {}
        walls = [0.0] * len(plans)
        for unit, (observations, wall_seconds) in zip(units, outcomes):
            by_plan.setdefault(unit.plan_index, []).append(
                (unit.start, observations)
            )
            walls[unit.plan_index] += wall_seconds

        merged: list[tuple[AddressObservation, ...]] = []
        timings: list[ShardTiming] = []
        for plan_index in range(len(plans)):
            pieces = sorted(by_plan.get(plan_index, []))
            merged.append(
                tuple(obs for _, piece in pieces for obs in piece)
            )
            prediction = predictions[plan_index]
            assert prediction is not None
            timings.append(
                replace(prediction, wall_seconds=walls[plan_index])
            )
        return merged, tuple(timings), len(units)

    def _record_costs(
        self, timings: tuple[ShardTiming, ...], plans: list[_ShardPlan]
    ) -> None:
        """Persist observed shard costs into the disk manifest, if any."""
        if self.cache is None or self.cache.store is None:
            return
        store = self.cache.store
        for timing, plan in zip(timings, plans):
            if timing.wall_seconds <= 0.0:
                # No usable observation — e.g. a remote worker served the
                # shard's chunks from its store without a recorded
                # execution cost.  The cost model rejects zero walls
                # anyway; recording one would only overwrite a genuine
                # earlier observation.
                continue
            store.record_cost(
                ShardCostRecord(
                    city=timing.city,
                    isp=timing.isp,
                    config_digest=plan.config_digest,
                    wall_seconds=timing.wall_seconds,
                    task_count=timing.tasks,
                    pacing_time_scale=self.config.pacing_time_scale,
                )
            )
        store.flush()
