"""The curation pipeline: world + BQT fleet -> broadband dataset.

This is the paper's Section 4 methodology end to end: stratified sampling
from the residential feed, fleet-scale BQT querying against the BAT
servers, and assembly into the curated dataset.  The pipeline consumes
**only** the address feed and the HTTP transport — ground-truth deployment
objects are never touched, so every analysis result downstream is a genuine
measurement of the simulated ISPs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..addresses.noise import NoisyAddress
from ..core.orchestrator import ContainerFleet
from ..core.workflow import QueryResult
from ..errors import DatasetError
from ..seeding import derive_seed
from ..world import World
from .container import BroadbandDataset
from .records import AddressObservation, PlanObservation
from .sampling import SamplingConfig, sample_city

__all__ = ["CurationConfig", "CurationPipeline", "hash_address_id"]


def hash_address_id(street_line: str, zip_code: str, salt: str) -> str:
    """Privacy-preserving address identifier (salted SHA-256, 16 hex chars)."""
    digest = hashlib.sha256(f"{salt}|{street_line}|{zip_code}".encode()).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class CurationConfig:
    """Pipeline knobs.

    Attributes:
        sampling: Stratified-sampling parameters (10% / min 30 by default).
        n_workers: BQT fleet size.  The paper uses 50-100 containers and
            verified up to 200 leave ISP response times unaffected.
        politeness_seconds: Per-worker pause between queries.
        salt: Salt for the privacy-preserving address hash.
    """

    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    n_workers: int = 50
    politeness_seconds: float = 5.0
    salt: str = "bqt-release"


class CurationPipeline:
    """Runs the full data-collection methodology against a world."""

    def __init__(self, world: World, config: CurationConfig | None = None) -> None:
        self._world = world
        self.config = config or CurationConfig()

    def _tasks_for(
        self, city: str, isp: str
    ) -> list[tuple[str, NoisyAddress]]:
        """Stratified sample for one (city, ISP) pair, flattened to tasks."""
        city_world = self._world.city(city)
        samples = sample_city(
            city_world.book, self.config.sampling, self._world.seed, isp
        )
        tasks: list[tuple[str, NoisyAddress]] = []
        for geoid in sorted(samples):
            for entry in samples[geoid]:
                tasks.append((isp, entry))
        return tasks

    def _observation(
        self, entry: NoisyAddress, result: QueryResult
    ) -> AddressObservation:
        return AddressObservation(
            address_id=hash_address_id(
                entry.truth.street_line(), entry.truth.zip_code, self.config.salt
            ),
            city=entry.city,
            block_group=entry.truth.block_group,
            isp=result.isp,
            status=result.status,
            plans=tuple(PlanObservation.from_observed(p) for p in result.plans),
            elapsed_seconds=result.elapsed_seconds,
        )

    def curate(
        self,
        cities: tuple[str, ...] | None = None,
        isps: tuple[str, ...] | None = None,
    ) -> BroadbandDataset:
        """Collect the dataset for the requested cities and ISPs.

        Defaults to every city in the world and every major ISP active in
        each city (the paper's full methodology).
        """
        target_cities = cities if cities is not None else tuple(self._world.cities)
        all_tasks: list[tuple[str, NoisyAddress]] = []
        for city in target_cities:
            city_world = self._world.city(city)
            city_isps = tuple(
                isp
                for isp in city_world.info.isps
                if isps is None or isp in isps
            )
            for isp in city_isps:
                all_tasks.extend(self._tasks_for(city, isp))
        if not all_tasks:
            raise DatasetError("no (city, ISP) pairs matched the curation request")

        fleet = ContainerFleet(
            self._world.transport,
            n_workers=min(self.config.n_workers, max(1, len(all_tasks))),
            seed=derive_seed(self._world.seed, "curation-fleet"),
            politeness_seconds=self.config.politeness_seconds,
        )
        report = fleet.run(
            [(isp, entry.street_line, entry.zip_code) for isp, entry in all_tasks]
        )
        observations = tuple(
            self._observation(entry, result)
            for (_, entry), result in zip(all_tasks, report.results)
        )
        return BroadbandDataset(observations)
