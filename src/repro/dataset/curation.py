"""The curation pipeline: world + BQT fleet -> broadband dataset.

This is the paper's Section 4 methodology end to end: stratified sampling
from the residential feed, fleet-scale BQT querying against the BAT
servers, and assembly into the curated dataset.  The pipeline consumes
**only** the address feed and the HTTP transport — ground-truth deployment
objects are never touched, so every analysis result downstream is a genuine
measurement of the simulated ISPs.

Execution is sharded by (city, ISP) pair, mirroring how the paper split
collection across its container fleet.  Every shard is a *pure function*
of the world configuration and seeds derived from ``(city, ISP)``: it gets
its own fleet, its own residential proxy pool, and its own transport + BAT
server instance (fresh RTT sampler, render-delay stream, session table and
rate-limit windows).  Shards therefore run in any order — or in parallel
on any :mod:`repro.exec` backend — and the merged dataset is byte-identical
to a serial run.  A :class:`~repro.exec.cache.QueryResultCache` can be
attached to skip replaying shards whose content-addressed keys are already
known.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from ..addresses.database import AddressIndex
from ..addresses.noise import NoisyAddress
from ..bat.app import BatApplication
from ..bat.profiles import profile_for
from ..core.orchestrator import ContainerFleet
from ..core.workflow import QueryResult
from ..errors import DatasetError
from ..exec.base import Executor, resolve_executor
from ..exec.cache import QueryResultCache, address_cache_key
from ..exec.store import ShardMeta
from ..net.proxy import ResidentialProxyPool
from ..net.transport import InProcessTransport
from ..seeding import derive_seed
from ..world import (
    CityWorld,
    World,
    WorldConfig,
    build_city_world,
    offer_resolver,
)
from .container import BroadbandDataset
from .records import AddressObservation, PlanObservation
from .sampling import SamplingConfig, sample_city

__all__ = [
    "CurationConfig",
    "CurationPipeline",
    "CurationRunReport",
    "IspOverride",
    "hash_address_id",
]


def hash_address_id(street_line: str, zip_code: str, salt: str) -> str:
    """Privacy-preserving address identifier (salted SHA-256, 16 hex chars)."""
    digest = hashlib.sha256(f"{salt}|{street_line}|{zip_code}".encode()).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class IspOverride:
    """Per-ISP deviations from the global curation knobs.

    Fields left None inherit the global :class:`CurationConfig` value.
    Overrides are part of that ISP's shard digest — and *only* that
    ISP's — so tweaking one ISP's fleet size or politeness re-curates
    exactly the shards it affects (incremental re-curation).
    """

    n_workers: int | None = None
    politeness_seconds: float | None = None


@dataclass(frozen=True)
class CurationConfig:
    """Pipeline knobs.

    Attributes:
        sampling: Stratified-sampling parameters (10% / min 30 by default).
        n_workers: BQT fleet size per (city, ISP) shard.  The paper uses
            50-100 containers and verified up to 200 leave ISP response
            times unaffected.
        politeness_seconds: Per-worker pause between queries.
        salt: Salt for the privacy-preserving address hash.
        per_isp: ``(isp, IspOverride)`` pairs overriding fleet size or
            politeness for individual ISPs.  Stored as a tuple so the
            config stays hashable/picklable; use :meth:`with_isp_override`
            to derive one.
    """

    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    n_workers: int = 50
    politeness_seconds: float = 5.0
    salt: str = "bqt-release"
    per_isp: tuple[tuple[str, IspOverride], ...] = ()

    def with_isp_override(
        self,
        isp: str,
        n_workers: int | None = None,
        politeness_seconds: float | None = None,
    ) -> "CurationConfig":
        """A copy of this config with one ISP's knobs overridden."""
        kept = tuple(pair for pair in self.per_isp if pair[0] != isp)
        override = IspOverride(
            n_workers=n_workers, politeness_seconds=politeness_seconds
        )
        return replace(
            self,
            per_isp=tuple(
                sorted(kept + ((isp, override),), key=lambda pair: pair[0])
            ),
        )

    def _override_for(self, isp: str) -> IspOverride | None:
        for name, override in self.per_isp:
            if name == isp:
                return override
        return None

    def effective_n_workers(self, isp: str) -> int:
        override = self._override_for(isp)
        if override is not None and override.n_workers is not None:
            return override.n_workers
        return self.n_workers

    def effective_politeness(self, isp: str) -> float:
        override = self._override_for(isp)
        if override is not None and override.politeness_seconds is not None:
            return override.politeness_seconds
        return self.politeness_seconds


@dataclass(frozen=True)
class CurationRunReport:
    """Accounting for the most recent :meth:`CurationPipeline.curate` call.

    Attributes:
        shards: Every (city, ISP) pair the call covered, in merge order.
        cached_shards: Shards served from the cache (either tier).
        disk_shards: The subset of ``cached_shards`` loaded from the
            on-disk store (zero without a disk tier).
        executed_shards: Shards dispatched to the executor.
        replayed_queries: Individual BQT queries actually executed — the
            cost a cache hit avoids.  Zero means the whole dataset came
            from cache without replaying a single query.
        backend: Executor backend name used for the dispatched shards.
    """

    shards: tuple[tuple[str, str], ...]
    cached_shards: int
    executed_shards: int
    backend: str
    disk_shards: int = 0
    replayed_queries: int = 0

    @property
    def total_shards(self) -> int:
        return len(self.shards)

    @property
    def memory_shards(self) -> int:
        """Cached shards served straight from the in-memory tier."""
        return self.cached_shards - self.disk_shards


def _shard_tasks(
    city_world: CityWorld,
    isp: str,
    sampling: SamplingConfig,
    world_seed: int,
) -> list[NoisyAddress]:
    """Stratified sample for one (city, ISP) shard, flattened to tasks.

    Task order is geoid-sorted and therefore identical however and
    wherever the shard runs.
    """
    samples = sample_city(city_world.book, sampling, world_seed, isp)
    tasks: list[NoisyAddress] = []
    for geoid in sorted(samples):
        tasks.extend(samples[geoid])
    return tasks


def _shard_observations(
    world_config: WorldConfig,
    city_world: CityWorld,
    isp: str,
    config: CurationConfig,
    tasks: list[NoisyAddress] | None = None,
) -> tuple[AddressObservation, ...]:
    """Execute one (city, ISP) shard against fresh per-shard server state.

    The shard's transport, BAT application, proxy pool and fleet are all
    constructed here from seeds derived from ``(city, ISP)``, so the
    returned observations depend only on ``(world_config, city, isp,
    config)`` — never on sibling shards, execution order, or the backend.
    ``tasks`` may be supplied by a caller that already sampled the shard
    (the cache-keying path); it must equal ``_shard_tasks(...)``.
    """
    city = city_world.info.name
    seed = world_config.seed
    if tasks is None:
        tasks = _shard_tasks(city_world, isp, config.sampling, seed)
    if not tasks:
        return ()

    transport = InProcessTransport(
        latency=world_config.latency,
        seed=derive_seed(seed, "curation-transport", city, isp),
    )
    transport.register(
        BatApplication(
            profile=profile_for(isp),
            index=AddressIndex(tuple(city_world.book.canonical)),
            offers=offer_resolver({city: city_world}, isp),
            seed=seed,
        )
    )

    n_workers = min(config.effective_n_workers(isp), max(1, len(tasks)))
    fleet = ContainerFleet(
        transport,
        n_workers=n_workers,
        seed=derive_seed(seed, "curation-fleet", city, isp),
        proxy_pool=ResidentialProxyPool(
            n_workers, seed=derive_seed(seed, "curation-pool", city, isp)
        ),
        politeness_seconds=config.effective_politeness(isp),
    )
    report = fleet.run(
        [(isp, entry.street_line, entry.zip_code) for entry in tasks]
    )

    def observation(entry: NoisyAddress, result: QueryResult) -> AddressObservation:
        return AddressObservation(
            address_id=hash_address_id(
                entry.truth.street_line(), entry.truth.zip_code, config.salt
            ),
            city=entry.city,
            block_group=entry.truth.block_group,
            isp=result.isp,
            status=result.status,
            plans=tuple(PlanObservation.from_observed(p) for p in result.plans),
            elapsed_seconds=result.elapsed_seconds,
        )

    return tuple(
        observation(entry, result)
        for entry, result in zip(tasks, report.results)
    )


# ----------------------------------------------------------------------
# Process-backend entry point
# ----------------------------------------------------------------------

# Worker-process memo of rebuilt cities: shards of the same city landing in
# the same process pay the ground-truth rebuild once.
_CITY_WORLD_MEMO: dict[tuple[WorldConfig, str], CityWorld] = {}


@dataclass(frozen=True)
class _ShardJob:
    """Self-contained, picklable description of one shard's work."""

    world_config: WorldConfig
    city: str
    isp: str
    config: CurationConfig


def _run_shard_job(job: _ShardJob) -> tuple[AddressObservation, ...]:
    """Top-level shard runner (picklable; used by every backend).

    In a worker process the city's ground truth is rebuilt from the world
    configuration — :func:`repro.world.build_city_world` is a pure function
    of ``(config, city)``, so the rebuild is indistinguishable from the
    parent's copy and the observations come out byte-identical.
    """
    memo_key = (job.world_config, job.city)
    city_world = _CITY_WORLD_MEMO.get(memo_key)
    if city_world is None:
        city_world = build_city_world(job.world_config, job.city)
        _CITY_WORLD_MEMO[memo_key] = city_world
    return _shard_observations(job.world_config, city_world, job.isp, job.config)


@dataclass(frozen=True)
class _ShardPlan:
    """One shard as scheduled by a concrete ``curate()`` call."""

    city: str
    isp: str
    city_world: CityWorld
    cache_keys: tuple[str, ...]
    # The shard's sampled tasks, when the cache-keying path already drew
    # them (reused by the serial/thread execution path; None otherwise).
    tasks: tuple[NoisyAddress, ...] | None = None
    # Config digest of this shard (incremental re-curation unit); labels
    # the entry in the disk manifest.
    config_digest: str = ""


class CurationPipeline:
    """Runs the full data-collection methodology against a world.

    Args:
        world: The simulated measurement environment.
        config: Pipeline knobs (sampling, fleet size, politeness, salt).
        executor: Execution backend for (city, ISP) shards — an
            :class:`~repro.exec.Executor`, a backend name (``"serial"``,
            ``"thread"``, ``"process"``, ``"async"``), or None for
            serial.  Every backend produces the same dataset, byte for
            byte.
        cache: Optional :class:`~repro.exec.QueryResultCache`; shards whose
            content-addressed keys are fully present are served from it
            without replaying any queries.
    """

    def __init__(
        self,
        world: World,
        config: CurationConfig | None = None,
        executor: Executor | str | None = None,
        cache: QueryResultCache | None = None,
    ) -> None:
        self._world = world
        self.config = config or CurationConfig()
        self.executor = resolve_executor(executor)
        self.cache = cache
        self.last_run: CurationRunReport | None = None

    # ------------------------------------------------------------------
    # Cache keying
    # ------------------------------------------------------------------
    def _base_digest(self) -> str:
        """Digest of the world-wide inputs every shard shares.

        Per-ISP knobs are deliberately excluded — they enter each shard's
        digest individually via :meth:`_shard_config_digest`, so a change
        scoped to one ISP invalidates only that ISP's shards.
        """
        config = self._world.config
        parts = (
            repr(self.config.sampling),
            self.config.salt,
            repr(config.latency),
            repr(config.addresses),
            repr(config.deployment),
            repr(config.offers),
        )
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()

    def _shard_config_digest(self, city: str, isp: str, base: str) -> str:
        """Config digest of one (city, ISP) shard.

        Combines the world-wide base digest with the shard coordinates and
        the *effective* per-ISP knobs (fleet size, politeness).  This is
        the unit of incremental re-curation: a shard whose digest is
        unchanged is loaded from cache; a changed digest means stale and
        the shard — only that shard — is re-dispatched.
        """
        parts = (
            base,
            city,
            isp,
            str(self.config.effective_n_workers(isp)),
            repr(self.config.effective_politeness(isp)),
        )
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()

    def _shard_cache_keys(
        self, isp: str, tasks: list[NoisyAddress], digest: str
    ) -> tuple[str, ...]:
        # Keys address the *canonical* (truth) address: distinct feed
        # entries can share a noisy public spelling, but never a canonical
        # one, and for a fixed (seed, scale, config) the noisy spelling —
        # hence the query outcome — is a pure function of the truth.
        config = self._world.config
        return tuple(
            address_cache_key(
                isp,
                entry.truth.street_line(),
                entry.truth.zip_code,
                config.seed,
                config.scale,
                context_digest=digest,
            )
            for entry in tasks
        )

    # ------------------------------------------------------------------
    # Curation
    # ------------------------------------------------------------------
    def curate(
        self,
        cities: tuple[str, ...] | None = None,
        isps: tuple[str, ...] | None = None,
    ) -> BroadbandDataset:
        """Collect the dataset for the requested cities and ISPs.

        Defaults to every city in the world and every major ISP active in
        each city (the paper's full methodology).  Shards are merged in
        (city, ISP) schedule order, so the record order — like the records
        themselves — is independent of the execution backend.
        """
        target_cities = cities if cities is not None else tuple(self._world.cities)
        shards: list[tuple[str, str]] = []
        for city in target_cities:
            city_world = self._world.city(city)
            for isp in city_world.info.isps:
                if isps is None or isp in isps:
                    shards.append((city, isp))
        if not shards:
            raise DatasetError("no (city, ISP) pairs matched the curation request")

        # Every shard's config digest is computed up front; it decides —
        # together with the address-level keys it feeds — whether the
        # shard is fresh (served from cache) or stale (re-dispatched).
        base = self._base_digest() if self.cache is not None else ""
        plans: list[_ShardPlan] = []
        for city, isp in shards:
            city_world = self._world.city(city)
            keys: tuple[str, ...] = ()
            tasks: tuple[NoisyAddress, ...] | None = None
            digest = ""
            if self.cache is not None:
                digest = self._shard_config_digest(city, isp, base)
                tasks = tuple(
                    _shard_tasks(
                        city_world, isp, self.config.sampling,
                        self._world.config.seed,
                    )
                )
                keys = self._shard_cache_keys(isp, list(tasks), digest)
            plans.append(
                _ShardPlan(city, isp, city_world, keys, tasks, digest)
            )

        # Serve whole shards from the cache; replay the rest.
        results: dict[int, tuple[AddressObservation, ...]] = {}
        pending: list[tuple[int, _ShardPlan]] = []
        disk_shards = 0
        for index, plan in enumerate(plans):
            cached = None
            if self.cache is not None:
                before = self.cache.stats.disk_shard_hits
                cached = self.cache.lookup_shard(plan.cache_keys)
                disk_shards += self.cache.stats.disk_shard_hits - before
            if cached is not None:
                results[index] = cached
            else:
                pending.append((index, plan))

        replayed = 0
        if pending:
            executed = self._execute([plan for _, plan in pending])
            world_config = self._world.config
            for (index, plan), observations in zip(pending, executed):
                results[index] = observations
                replayed += len(observations)
                if self.cache is not None:
                    self.cache.store_shard(
                        plan.cache_keys,
                        observations,
                        meta=ShardMeta(
                            city=plan.city,
                            isp=plan.isp,
                            seed=world_config.seed,
                            scale=world_config.scale,
                            config_digest=plan.config_digest,
                        ),
                    )

        self.last_run = CurationRunReport(
            shards=tuple(shards),
            cached_shards=len(plans) - len(pending),
            executed_shards=len(pending),
            backend=self.executor.name,
            disk_shards=disk_shards,
            replayed_queries=replayed,
        )
        merged: list[AddressObservation] = []
        for index in range(len(plans)):
            merged.extend(results[index])
        return BroadbandDataset(tuple(merged))

    def _execute(
        self, plans: list[_ShardPlan]
    ) -> list[tuple[AddressObservation, ...]]:
        """Dispatch shard work through the configured backend."""
        world_config = self._world.config
        if self.executor.name == "process":
            jobs = [
                _ShardJob(world_config, plan.city, plan.isp, self.config)
                for plan in plans
            ]
            # Pre-seed the city memo with the parent's already-built
            # cities: fork-started workers inherit it and skip the
            # rebuild entirely (spawn-started workers rebuild, which is
            # byte-equivalent).
            seeded: list[tuple[WorldConfig, str]] = []
            for plan in plans:
                memo_key = (world_config, plan.city)
                if memo_key not in _CITY_WORLD_MEMO:
                    _CITY_WORLD_MEMO[memo_key] = plan.city_world
                    seeded.append(memo_key)
            try:
                return self.executor.map(_run_shard_job, jobs)
            finally:
                for memo_key in seeded:
                    _CITY_WORLD_MEMO.pop(memo_key, None)
        def run_plan(plan: _ShardPlan) -> tuple[AddressObservation, ...]:
            return _shard_observations(
                world_config,
                plan.city_world,
                plan.isp,
                self.config,
                tasks=list(plan.tasks) if plan.tasks is not None else None,
            )

        if self.executor.name == "async":
            # Whole (city, ISP) shards become coroutines on one event
            # loop, bounded by the executor's semaphore.  Shard work on
            # the in-process transport is CPU-bound, so this is about
            # protocol coverage and determinism (the parity suite), not
            # speed — the async wall-clock win lives on the fleet's
            # real-TCP path, where page fetches actually await.
            async def run_plan_async(
                plan: _ShardPlan,
            ) -> tuple[AddressObservation, ...]:
                return run_plan(plan)

            return self.executor.map(run_plan_async, plans)
        return self.executor.map(run_plan, plans)
