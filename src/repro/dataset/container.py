"""The curated broadband-plans dataset and its aggregation APIs.

The analysis layer (Section 5) consumes block-group-level aggregates:
median best carriage value, coefficient of variation, and inferred access
technology.  All of those are derived here from raw address observations,
following the paper's aggregation choices (Section 5.1): the *best* cv per
address characterizes the address; the block group is characterized by the
median of its addresses' best cvs.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from .records import AddressObservation

__all__ = ["BroadbandDataset", "BlockGroupAggregate"]


@dataclass(frozen=True)
class BlockGroupAggregate:
    """Aggregated view of one (city, ISP, block group) cell."""

    city: str
    isp: str
    block_group: str
    n_addresses: int
    n_with_plans: int
    median_cv: float | None
    cov: float | None
    has_fiber: bool

    @property
    def served(self) -> bool:
        return self.n_with_plans > 0


class BroadbandDataset:
    """A set of address observations with block-group aggregation."""

    def __init__(self, observations: tuple[AddressObservation, ...]) -> None:
        self._observations = observations
        self._by_city_isp: dict[tuple[str, str], list[AddressObservation]] = (
            defaultdict(list)
        )
        for obs in observations:
            self._by_city_isp[(obs.city, obs.isp)].append(obs)

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self):
        return iter(self._observations)

    @property
    def observations(self) -> tuple[AddressObservation, ...]:
        return self._observations

    def cities(self) -> tuple[str, ...]:
        return tuple(sorted({c for c, _ in self._by_city_isp}))

    def isps(self) -> tuple[str, ...]:
        return tuple(sorted({i for _, i in self._by_city_isp}))

    def isps_in(self, city: str) -> tuple[str, ...]:
        return tuple(sorted({i for c, i in self._by_city_isp if c == city}))

    def for_city_isp(self, city: str, isp: str) -> tuple[AddressObservation, ...]:
        return tuple(self._by_city_isp.get((city, isp), ()))

    def merged_with(self, other: "BroadbandDataset") -> "BroadbandDataset":
        return BroadbandDataset(self._observations + other.observations)

    def content_digest(self) -> str:
        """SHA-256 over a canonical serialization of every observation.

        Two datasets have equal digests iff their observation sequences
        are equal — field for field, including plan lists and float
        timings (serialized via ``repr``, which round-trips exactly).
        The golden-digest regression suite pins these values for the seed
        configurations, so any drift in the curation pipeline — across
        backends, cache tiers, or incremental re-runs — is caught as a
        digest mismatch rather than a subtle analysis shift.
        """
        hasher = hashlib.sha256()
        for obs in self._observations:
            row = (
                obs.address_id,
                obs.city,
                obs.block_group,
                obs.isp,
                obs.status,
                repr(obs.elapsed_seconds),
                ";".join(
                    f"{p.name}|{p.download_mbps!r}|{p.upload_mbps!r}"
                    f"|{p.monthly_price!r}"
                    for p in obs.plans
                ),
            )
            hasher.update("\x1f".join(row).encode("utf-8"))
            hasher.update(b"\x1e")
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Block-group aggregation
    # ------------------------------------------------------------------
    def block_group_best_cvs(self, city: str, isp: str) -> dict[str, list[float]]:
        """Per block group: the best-cv values of its sampled addresses."""
        cvs: dict[str, list[float]] = defaultdict(list)
        for obs in self.for_city_isp(city, isp):
            best = obs.best_cv
            if best is not None:
                cvs[obs.block_group].append(best)
        return dict(cvs)

    def block_group_median_cv(self, city: str, isp: str) -> dict[str, float]:
        """Per block group: median of address-level best carriage values.

        This is the paper's headline block-group metric (Section 5.1).
        """
        return {
            geoid: float(np.median(values))
            for geoid, values in self.block_group_best_cvs(city, isp).items()
        }

    def block_group_cov(self, city: str, isp: str) -> dict[str, float]:
        """Per block group: coefficient of variation of best cv (Figure 4)."""
        covs: dict[str, float] = {}
        for geoid, values in self.block_group_best_cvs(city, isp).items():
            array = np.asarray(values)
            mean = float(array.mean())
            if mean > 0:
                covs[geoid] = float(array.std() / mean)
        return covs

    def block_group_has_fiber(self, city: str, isp: str) -> dict[str, bool]:
        """Per block group: does any sampled address see a fiber plan?"""
        fiber: dict[str, bool] = defaultdict(bool)
        for obs in self.for_city_isp(city, isp):
            if obs.has_plans:
                fiber[obs.block_group] |= obs.technology == "fiber"
        return dict(fiber)

    def aggregates(self, city: str, isp: str) -> tuple[BlockGroupAggregate, ...]:
        """Full aggregate rows for one (city, ISP) pair."""
        by_bg: dict[str, list[AddressObservation]] = defaultdict(list)
        for obs in self.for_city_isp(city, isp):
            by_bg[obs.block_group].append(obs)
        rows = []
        for geoid in sorted(by_bg):
            observations = by_bg[geoid]
            cvs = np.asarray(
                [o.best_cv for o in observations if o.best_cv is not None]
            )
            has_fiber = any(
                o.technology == "fiber" for o in observations if o.has_plans
            )
            if cvs.size:
                median_cv = float(np.median(cvs))
                mean = float(cvs.mean())
                cov = float(cvs.std() / mean) if mean > 0 else None
            else:
                median_cv = None
                cov = None
            rows.append(
                BlockGroupAggregate(
                    city=city,
                    isp=isp,
                    block_group=geoid,
                    n_addresses=len(observations),
                    n_with_plans=int(sum(1 for o in observations if o.has_plans)),
                    median_cv=median_cv,
                    cov=cov,
                    has_fiber=has_fiber,
                )
            )
        return tuple(rows)

    # ------------------------------------------------------------------
    # Dataset-level summaries
    # ------------------------------------------------------------------
    def summary_counts(self) -> dict[str, int]:
        """Totals used in the Table 2 reproduction."""
        block_groups = {
            (o.city, o.block_group) for o in self._observations
        }
        return {
            "observations": len(self._observations),
            "addresses": len({(o.city, o.address_id) for o in self._observations}),
            "block_groups": len(block_groups),
            "cities": len(self.cities()),
            "isps": len(self.isps()),
        }

    def require_nonempty(self) -> None:
        if not self._observations:
            raise DatasetError("dataset is empty")
