"""Columnar curation core: the vectorized single-query hot path.

Every scaling layer in this library (threads, async, LPT chunking,
distributed fleets, the serving tier) multiplies the *same* per-address
scalar inner loop: one full simulated browser session per task — HTML
render, DOM parse, cookie jar, safeguard checks — even though on the
in-process transport the observation each task produces is, since the
scheduler PR made every stochastic draw content-keyed, a **closed-form
function of the task's content**.  This module exploits that purity the
way gnpy computes physics over whole spectral arrays instead of
per-channel loops: a shard becomes struct-of-arrays numpy columns, and
the per-task RNG draws are synthesized as whole-shard vectorized
operations that reproduce the scalar streams bit for bit.

Two pieces:

* :class:`ColumnarShard` — a shard's observations as numpy columns
  (struct-of-arrays), losslessly convertible to and from the record
  objects in :mod:`repro.dataset.records`, with a ``content_digest()``
  byte-identical to :meth:`repro.dataset.container.BroadbandDataset.
  content_digest`.
* :func:`run_shard_columnar` — the fast-path replay hooked into
  :func:`repro.dataset.curation._shard_observations` (and therefore
  under :func:`repro.exec.spec.run_shard_spec`, i.e. every backend and
  remote workers).  Tasks whose BAT walk has no per-address branching —
  flaky technical errors, straight lookup hits, the existing-customer
  interstitial — are synthesized vectorially; everything that branches
  on live DOM content (suggestion pages, MDU pickers, unrecoverable
  misses) is replayed through the untouched scalar fleet.  The merged
  shard is byte-identical to an all-scalar run, which the golden-digest
  parity suite (``tests/test_columnar.py``) pins with the fast path
  forced on and off.

RNG-equivalence argument (why the synthesis is bit-exact):

1. Per task, :meth:`repro.core.bqt.BroadbandQueryTool.query` announces a
   task boundary; the transport re-seeds the client's RTT stream from
   ``derive_seed(transport_seed, "task-rtt", isp, street, zip)`` and the
   BAT app its render-delay stream from ``derive_seed(app_seed,
   "delays", isp, street, zip)``.  Fresh generators per task mean a
   k-request task consumes draw indices ``0..k-1`` of each stream —
   independent of worker identity, politeness, or shard position.
2. ``Generator.standard_normal(k)`` produces exactly the same values as
   k successive ``standard_normal()`` calls on the same generator (one
   sequential ziggurat stream either way).
3. ``np.exp`` on a float64 array applies the same ufunc kernel per
   element as the scalar calls, so ``base * np.exp(sigma * z)`` is
   bitwise equal elementwise to the per-request scalar arithmetic.
4. Elapsed time is an offset-free :class:`~repro.net.clock.VirtualClock`
   mark: the float sum of the request sleeps in order
   ``rtt/2, render, rtt/2`` per request, starting from 0.0 — replayed
   here as the identical sequence of Python float additions.  Render
   values cross the ``X-Render-Seconds`` header as ``str(float)`` and
   back, which round-trips exactly; the server-load multiplier is 1.0
   whenever the fleet is within server capacity (a fast-path gate).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from functools import lru_cache
from hashlib import sha256
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..addresses.normalize import canonical_key
from ..bat import pages
from ..bat.profiles import BatProfile, profile_for
from ..core.parsing import plans_from_markup
from ..seeding import derive_seed
from ..world import offer_resolver
from .records import AddressObservation, PlanObservation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..addresses.noise import NoisyAddress
    from ..isp.plans import Plan
    from ..world import CityWorld, WorldConfig
    from .curation import CurationConfig

__all__ = [
    "COLUMNAR_ENV",
    "ColumnarShard",
    "columnar_enabled",
    "hash_address_ids",
    "run_shard_columnar",
    "columnar_cache_stats",
]


#: Environment gate for the fast path.  On by default; set to ``0`` /
#: ``off`` / ``false`` / ``no`` to force every shard through the scalar
#: replay (the parity suite and CI run both settings).
COLUMNAR_ENV = "REPRO_COLUMNAR"
_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})

#: Mirrors the :class:`~repro.net.transport.InProcessTransport` default.
#: A fleet wider than this degrades render times (load multiplier > 1),
#: which the synthesis does not model — such shards run scalar.
_SERVER_CAPACITY = 1000


def columnar_enabled() -> bool:
    """Whether the columnar fast path is enabled (``REPRO_COLUMNAR``)."""
    raw = os.environ.get(COLUMNAR_ENV, "1").strip().lower()
    return raw not in _DISABLED_VALUES


# ----------------------------------------------------------------------
# Batched address-id hashing
# ----------------------------------------------------------------------
def hash_address_ids(
    street_lines: Iterable[str],
    zip_codes: Iterable[str],
    salt: str,
) -> list[str]:
    """Batch form of :func:`repro.dataset.curation.hash_address_id`.

    Byte-identical output — the message is the same ``salt|street|zip``
    string.  SHA-256 itself dominates the cost, so the batch win is
    modest: the salt prefix is formatted once per shard instead of per
    address, and the tight comprehension hoists the constructor lookup.
    The microbench guard in ``benchmarks/test_cpu_path.py`` pins that
    this never runs slower than the scalar loop it replaces.
    """
    prefix = salt + "|"
    digest = sha256
    return [
        digest(f"{prefix}{street}|{zip5}".encode()).hexdigest()[:16]
        for street, zip5 in zip(street_lines, zip_codes)
    ]


# ----------------------------------------------------------------------
# The struct-of-arrays shard container
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnarShard:
    """One shard's observations as numpy columns (struct-of-arrays).

    String columns are fixed-width numpy unicode arrays; the
    variable-length plans column is dictionary-encoded — ``plan_pool``
    holds the distinct plan tuples (shards see a handful of offer tiers
    across thousands of addresses) and ``plan_index`` points each row at
    its tuple.  The encoding is lossless: :meth:`to_records` rebuilds
    the exact :class:`~repro.dataset.records.AddressObservation` objects
    ``from_records`` consumed, and :meth:`content_digest` serializes the
    same bytes as the record-based dataset digest.
    """

    address_id: np.ndarray
    city: np.ndarray
    block_group: np.ndarray
    isp: np.ndarray
    status: np.ndarray
    elapsed_seconds: np.ndarray
    plan_index: np.ndarray
    plan_pool: tuple[tuple[PlanObservation, ...], ...]

    def __len__(self) -> int:
        return int(self.address_id.shape[0])

    @staticmethod
    def _str_column(values: Sequence[str]) -> np.ndarray:
        # np.array infers the minimal fixed width; an all-empty (or
        # empty) column still needs a concrete unicode dtype.
        if not values:
            return np.empty(0, dtype="<U1")
        return np.array(values, dtype=np.str_)

    @classmethod
    def from_records(
        cls, observations: Sequence[AddressObservation]
    ) -> "ColumnarShard":
        """Dictionary-encode a record sequence into columns (lossless)."""
        pool: dict[tuple[PlanObservation, ...], int] = {}
        indexes = np.empty(len(observations), dtype=np.int64)
        for row, obs in enumerate(observations):
            indexes[row] = pool.setdefault(obs.plans, len(pool))
        return cls(
            address_id=cls._str_column([o.address_id for o in observations]),
            city=cls._str_column([o.city for o in observations]),
            block_group=cls._str_column(
                [o.block_group for o in observations]
            ),
            isp=cls._str_column([o.isp for o in observations]),
            status=cls._str_column([o.status for o in observations]),
            elapsed_seconds=np.array(
                [o.elapsed_seconds for o in observations], dtype=np.float64
            ),
            plan_index=indexes,
            plan_pool=tuple(pool),
        )

    def to_records(self) -> tuple[AddressObservation, ...]:
        """Rebuild the exact record objects this shard encodes."""
        pool = self.plan_pool
        return tuple(
            AddressObservation(
                address_id=str(self.address_id[row]),
                city=str(self.city[row]),
                block_group=str(self.block_group[row]),
                isp=str(self.isp[row]),
                status=str(self.status[row]),
                plans=pool[int(self.plan_index[row])],
                # numpy float64 -> Python float is the identical IEEE
                # value; repr/round-trip exactness is what the digest
                # relies on.
                elapsed_seconds=float(self.elapsed_seconds[row]),
            )
            for row in range(len(self))
        )

    def content_digest(self) -> str:
        """Byte-identical to ``BroadbandDataset.content_digest()``.

        The plans serialization — the expensive part of the record-based
        digest — is hoisted per *distinct* plan tuple instead of being
        re-formatted per row, which is the columnar encoding paying off.
        """
        plan_strs = [
            ";".join(
                f"{p.name}|{p.download_mbps!r}|{p.upload_mbps!r}"
                f"|{p.monthly_price!r}"
                for p in plans
            )
            for plans in self.plan_pool
        ]
        hasher = sha256()
        # repr(float(...)) — NOT repr of the numpy scalar, whose repr
        # differs under numpy >= 2.
        elapsed = self.elapsed_seconds.tolist()
        for row in range(len(self)):
            parts = (
                str(self.address_id[row]),
                str(self.city[row]),
                str(self.block_group[row]),
                str(self.isp[row]),
                str(self.status[row]),
                repr(elapsed[row]),
                plan_strs[int(self.plan_index[row])],
            )
            hasher.update("\x1f".join(parts).encode("utf-8"))
            hasher.update(b"\x1e")
        return hasher.hexdigest()


# ----------------------------------------------------------------------
# Memoized plans-page observation
# ----------------------------------------------------------------------
@lru_cache(maxsize=512)
def _observed_plans(
    profile: BatProfile, plans: "tuple[Plan, ...]"
) -> tuple[PlanObservation, ...]:
    """What BQT records after scraping a plans page for ``plans``.

    The scalar path renders the full plans page (address line included)
    and parses it back.  The plan cells of that markup are independent
    of the address line — it appears only inside ``.service-address``,
    which the parser never reads — so one render+parse per distinct
    (profile, plan tuple) with a placeholder address reproduces the
    scraped values for every address sharing the offer tier.
    """
    markup = pages.render_plans(profile, "0 COLUMNAR PLACEHOLDER", list(plans))
    return tuple(
        PlanObservation.from_observed(p) for p in plans_from_markup(markup)
    )


def columnar_cache_stats() -> dict[str, object]:
    """Cache counters for the ``--profile-cpu`` report."""
    return {"columnar._observed_plans": _observed_plans.cache_info()}


# ----------------------------------------------------------------------
# Per-task classification
# ----------------------------------------------------------------------
# One classified fast-path task: (request count, per-request render-delay
# medians, terminal status, recorded plans).
@dataclass(frozen=True)
class _FastTask:
    requests: int
    medians: tuple[float, ...]
    status: str
    plans: tuple[PlanObservation, ...]


def _classify(
    entry: "NoisyAddress",
    profile: BatProfile,
    app_seed: int,
    index,
    offers,
) -> _FastTask | None:
    """Resolve one task's BAT walk without executing it.

    Returns None when the walk leaves the branch-free envelope —
    suggestion pages, MDU pickers, unrecoverable misses, empty inputs —
    i.e. whenever the scalar engine's DOM-driven decisions would kick
    in.  Mirrors :meth:`repro.bat.app.BatApplication._resolve` exactly,
    including float arithmetic on the delay medians.
    """
    street = entry.street_line.strip()
    zip5 = entry.zip_code.strip()
    if not street or not zip5:
        return None  # BqtError / not-found paths: scalar's problem

    def uniform(label: str, key: str) -> float:
        return (derive_seed(app_seed, label, key) % 10_000_000) / 10_000_000.0

    # Flaky check first, keyed on the *queried* spelling — exactly the
    # server's order, so a flaky mis-spelled address is still fast-path.
    queried_key = canonical_key(street, zip5)
    if uniform("flaky", queried_key) < profile.flaky_error_rate:
        return _FastTask(
            requests=2,
            medians=(profile.home_delay, profile.lookup_delay),
            status="technical_error",
            plans=(),
        )

    found = index.lookup_canonical(queried_key)
    if found is None:
        # Suggestions / MDU picker / not-found: DOM-dependent branching.
        return None

    plans = offers(found)
    observed = _observed_plans(profile, plans) if plans else ()
    status = "plans" if plans else "no_service"
    existing = (
        uniform("existing", canonical_key(found.street_line(), found.zip_code))
        < profile.existing_customer_rate
    )
    if existing:
        # home, lookup+interstitial, then the new-customer finish where
        # the lookup is not re-charged (0.0 + final render).
        final = (
            0.0 + profile.plans_delay
            if plans
            else 0.0 + profile.lookup_delay * 0.5
        )
        return _FastTask(
            requests=3,
            medians=(
                profile.home_delay,
                profile.lookup_delay + profile.interstitial_delay,
                final,
            ),
            status=status,
            plans=observed,
        )
    final = (
        profile.lookup_delay + profile.plans_delay
        if plans
        else profile.lookup_delay + profile.lookup_delay * 0.5
    )
    return _FastTask(
        requests=2,
        medians=(profile.home_delay, final),
        status=status,
        plans=observed,
    )


# ----------------------------------------------------------------------
# The fast-path shard replay
# ----------------------------------------------------------------------
def run_shard_columnar(
    world_config: "WorldConfig",
    city_world: "CityWorld",
    isp: str,
    config: "CurationConfig",
    tasks: "Sequence[NoisyAddress]",
) -> tuple[AddressObservation, ...] | None:
    """Replay one (city, ISP) shard through the columnar pipeline.

    Returns the shard's observations — byte-identical to the scalar
    fleet replay — or None when the whole shard must run scalar
    (pacing enabled, or a fleet wide enough to trip the server-load
    multiplier).  Tasks outside the branch-free envelope are replayed
    through the scalar fleet and merged back in task order.
    """
    if config.pacing_time_scale != 0.0:
        # Pacing exists to make wall time track virtual time; a path
        # that never sleeps would defeat it (bytes would match, the
        # scheduler benches would not).
        return None
    n_workers = min(config.effective_n_workers(isp), max(1, len(tasks)))
    if n_workers > _SERVER_CAPACITY:
        return None  # load multiplier > 1: synthesis does not model it

    from .curation import _city_address_index  # lazy: avoids a cycle

    city = city_world.info.name
    seed = world_config.seed
    profile = profile_for(isp)
    app_seed = derive_seed(seed, "bat", profile.isp)
    transport_seed = derive_seed(seed, "curation-transport", city, isp)
    latency = world_config.latency
    index = _city_address_index(world_config, city_world)
    offers = offer_resolver({city: city_world}, isp)

    fast: list[_FastTask] = []
    fast_positions: list[int] = []
    fast_entries: list["NoisyAddress"] = []
    slow_positions: list[int] = []
    slow_entries: list["NoisyAddress"] = []
    for position, entry in enumerate(tasks):
        classified = _classify(entry, profile, app_seed, index, offers)
        if classified is None:
            slow_positions.append(position)
            slow_entries.append(entry)
        else:
            fast.append(classified)
            fast_positions.append(position)
            fast_entries.append(entry)

    results: list[AddressObservation | None] = [None] * len(tasks)

    if fast:
        counts = [t.requests for t in fast]
        total_draws = sum(counts)
        # Per-task generators (the content-keyed streams), batched draws:
        # each k-request task consumes indices 0..k-1 of its own fresh
        # stream, so one standard_normal(k) call per task reproduces the
        # scalar per-request draws exactly; the exp/multiply arithmetic
        # is then one whole-shard vector op.
        z_render = np.empty(total_draws, dtype=np.float64)
        offset = 0
        for entry, k in zip(fast_entries, counts):
            rng = np.random.default_rng(
                derive_seed(
                    app_seed, "delays", isp, entry.street_line, entry.zip_code
                )
            )
            z_render[offset : offset + k] = rng.standard_normal(k)
            offset += k
        spreads = np.exp(profile.render_sigma * z_render)

        rtts: np.ndarray | None = None
        if latency.base_rtt != 0.0:
            # base_rtt == 0 consumes no draw at all (sample_rtt
            # short-circuits), so the stream is only synthesized when
            # the scalar path would have drawn from it.
            z_rtt = np.empty(total_draws, dtype=np.float64)
            offset = 0
            for entry, k in zip(fast_entries, counts):
                rng = np.random.default_rng(
                    derive_seed(
                        transport_seed,
                        "task-rtt",
                        isp,
                        entry.street_line,
                        entry.zip_code,
                    )
                )
                z_rtt[offset : offset + k] = rng.standard_normal(k)
                offset += k
            rtts = latency.base_rtt * np.exp(latency.sigma * z_rtt)

        spread_list = spreads.tolist()
        rtt_list = rtts.tolist() if rtts is not None else None
        elapsed = np.empty(len(fast), dtype=np.float64)
        offset = 0
        for row, task in enumerate(fast):
            # The virtual clock's offset-free mark: the same sequence of
            # float additions the per-request sleeps perform —
            # rtt/2, render (x a load multiplier of exactly 1.0), rtt/2.
            acc = 0.0
            medians = task.medians
            for i in range(task.requests):
                half = (
                    rtt_list[offset + i] / 2.0 if rtt_list is not None else 0.0
                )
                render = round(medians[i] * spread_list[offset + i], 3)
                acc += half
                acc += render
                acc += half
            elapsed[row] = acc
            offset += task.requests

        salt = config.salt
        address_ids = hash_address_ids(
            [entry.truth.street_line() for entry in fast_entries],
            [entry.truth.zip_code for entry in fast_entries],
            salt,
        )
        pool: dict[tuple[PlanObservation, ...], int] = {}
        plan_indexes = np.empty(len(fast), dtype=np.int64)
        for row, task in enumerate(fast):
            plan_indexes[row] = pool.setdefault(task.plans, len(pool))
        shard = ColumnarShard(
            address_id=ColumnarShard._str_column(address_ids),
            city=ColumnarShard._str_column(
                [entry.city for entry in fast_entries]
            ),
            block_group=ColumnarShard._str_column(
                [entry.truth.block_group for entry in fast_entries]
            ),
            isp=ColumnarShard._str_column([isp] * len(fast)),
            status=ColumnarShard._str_column([t.status for t in fast]),
            elapsed_seconds=elapsed,
            plan_index=plan_indexes,
            plan_pool=tuple(pool),
        )
        for position, observation in zip(fast_positions, shard.to_records()):
            results[position] = observation

    if slow_entries:
        # Content-keyed task purity (the chunk-scheduling contract) makes
        # any task subset replay byte-identically on a fresh fleet — the
        # same property sub-shard chunking already relies on.
        from .curation import _scalar_shard_observations

        scalar = _scalar_shard_observations(
            world_config, city_world, isp, config, slow_entries
        )
        for position, observation in zip(slow_positions, scalar):
            results[position] = observation

    return tuple(results)  # type: ignore[arg-type]
