"""Dataset curation: sampling, the BQT pipeline, records, serialization."""

from .container import BlockGroupAggregate, BroadbandDataset
from .curation import (
    CurationConfig,
    CurationPipeline,
    CurationRunReport,
    IspOverride,
    hash_address_id,
)
from .io import read_dataset_csv, write_dataset_csv
from .records import AddressObservation, PlanObservation, infer_technology
from .sampling import SamplingConfig, sample_block_group, sample_city

__all__ = [
    "BlockGroupAggregate",
    "BroadbandDataset",
    "CurationConfig",
    "CurationPipeline",
    "CurationRunReport",
    "IspOverride",
    "hash_address_id",
    "read_dataset_csv",
    "write_dataset_csv",
    "AddressObservation",
    "PlanObservation",
    "infer_technology",
    "SamplingConfig",
    "sample_block_group",
    "sample_city",
]
