"""Address database with lookup and fuzzy-candidate APIs.

Two consumers use this database:

* The **BAT backends** (ISP side) look up normalized canonical keys and,
  on a miss, retrieve fuzzy candidates to present as suggestions — the
  behaviour BQT's "incorrect address" workflow relies on.
* The **sampling layer** (measurement side) enumerates feed entries per
  block group for the stratified sample.

The fuzzy-candidate index buckets canonical records by ``(zip, house-number
band)`` and, separately, by ``(zip, street-name prefix)`` so a single noisy
query never scans an entire city.
"""

from __future__ import annotations

from collections import defaultdict
from difflib import SequenceMatcher

from ..errors import AddressError
from .generator import CityAddressBook
from .model import Address
from .normalize import canonical_key, normalize_street_line, normalize_zip

__all__ = ["AddressIndex", "build_city_index"]

_NUMBER_BAND = 10  # house numbers within +/- band land in the same bucket


class AddressIndex:
    """Searchable index over a set of canonical addresses."""

    def __init__(self, addresses: tuple[Address, ...]) -> None:
        self._addresses = addresses
        self._by_key: dict[str, Address] = {}
        self._units_by_building: dict[str, list[Address]] = defaultdict(list)
        self._by_number_band: dict[tuple[str, int], list[Address]] = defaultdict(list)
        self._by_name_prefix: dict[tuple[str, str], list[Address]] = defaultdict(list)

        for address in addresses:
            key = canonical_key(address.street_line(), address.zip_code)
            self._by_key[key] = address
            building_key = canonical_key(
                address.without_unit().street_line(), address.zip_code
            )
            if address.is_multi_dwelling:
                self._units_by_building[building_key].append(address)
            band = address.house_number // _NUMBER_BAND
            self._by_number_band[(address.zip_code, band)].append(address)
            prefix = address.street_name[:3].upper()
            self._by_name_prefix[(address.zip_code, prefix)].append(address)

    def __len__(self) -> int:
        return len(self._addresses)

    @property
    def addresses(self) -> tuple[Address, ...]:
        return self._addresses

    def lookup(self, street_line: str, zip_code: str) -> Address | None:
        """Exact lookup after normalization; None if absent."""
        return self._by_key.get(canonical_key(street_line, zip_code))

    def lookup_canonical(self, key: str) -> Address | None:
        """Exact lookup by an already-computed ``canonical_key``.

        The columnar hot path normalizes each queried address once (the
        flaky-roll key) and reuses that key here, instead of paying
        ``canonical_key`` twice per task like ``lookup`` would.
        """
        return self._by_key.get(key)

    def units_at(self, street_line: str, zip_code: str) -> tuple[Address, ...]:
        """All unit-level records for a building-level street line."""
        building_key = canonical_key(street_line, zip_code)
        return tuple(self._units_by_building.get(building_key, ()))

    def candidates(
        self, street_line: str, zip_code: str, limit: int = 25
    ) -> tuple[Address, ...]:
        """Fuzzy candidates for a mis-spelled or mis-numbered street line.

        Pulls from both the house-number-band bucket and the street-name
        prefix bucket of the query ZIP, dedupes, ranks by relevance (house
        number match, then street-name similarity — real BATs surface the
        most plausible corrections first), and caps at ``limit``.
        """
        zip5 = normalize_zip(zip_code)
        tokens = normalize_street_line(street_line).split()
        found: dict[str, Address] = {}

        query_number = tokens[0] if tokens and tokens[0].isdigit() else ""
        if query_number:
            band = int(query_number) // _NUMBER_BAND
            for nearby_band in (band - 1, band, band + 1):
                for address in self._by_number_band.get((zip5, nearby_band), ()):
                    found.setdefault(address.street_line() + zip5, address)

        name_token = next((t for t in tokens if not t.isdigit()), "")
        if name_token:
            prefix = name_token[:3]
            for address in self._by_name_prefix.get((zip5, prefix), ()):
                found.setdefault(address.street_line() + zip5, address)

        query_name = " ".join(t for t in tokens if not t.isdigit())

        def relevance(address: Address) -> tuple[float, float, str]:
            number_match = 1.0 if str(address.house_number) == query_number else 0.0
            candidate_name = normalize_street_line(
                f"{address.street_name} {address.street_suffix}"
            )
            name_score = SequenceMatcher(None, query_name, candidate_name).ratio()
            # Negative scores sort best-first; street line breaks ties
            # deterministically.
            return (-number_match, -name_score, address.street_line())

        ordered = sorted(found.values(), key=relevance)
        return tuple(ordered[:limit])

    def restricted_to(self, block_groups: set[str]) -> "AddressIndex":
        """A sub-index covering only the given block groups.

        This is how per-ISP serviceability databases are derived: an ISP's
        BAT only knows the addresses inside its deployment footprint.
        """
        subset = tuple(a for a in self._addresses if a.block_group in block_groups)
        return AddressIndex(subset)


def build_city_index(book: CityAddressBook) -> AddressIndex:
    """Index every canonical address of a city."""
    if not book.canonical:
        raise AddressError(f"address book for {book.city} is empty")
    return AddressIndex(book.canonical)
