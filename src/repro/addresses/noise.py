"""Crowdsourced-noise model for the residential address feed.

The Zillow-like feed our curation pipeline samples from is crowdsourced and
imperfect (paper Section 3.1): abbreviation variants, typos, missing
apartment units, occasionally a wrong ZIP.  Each noise class triggers a
different path through the BAT querying workflow:

================  =============================================
Noise class       BAT behaviour it triggers
================  =============================================
variant           none (normalization absorbs it)
typo              "incorrect address" page with suggestions
wrong_number      "incorrect address" page with suggestions
missing_unit      "multi-dwelling unit" picker page
wrong_zip         suggestion list fails the ZIP sanity check
garbage           unrecoverable miss (no suggestions)
================  =============================================

The class probabilities are configurable so tests can force specific paths
and the ablation benches can turn noise off entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .model import Address
from .normalize import SUFFIX_ABBREVIATIONS

__all__ = ["NoiseClass", "NoiseConfig", "NoiseModel", "NoisyAddress"]


class NoiseClass:
    """Enumeration of feed-noise classes (plain strings for serializability)."""

    CLEAN = "clean"
    VARIANT = "variant"
    TYPO = "typo"
    WRONG_NUMBER = "wrong_number"
    MISSING_UNIT = "missing_unit"
    WRONG_ZIP = "wrong_zip"
    GARBAGE = "garbage"

    ALL = (CLEAN, VARIANT, TYPO, WRONG_NUMBER, MISSING_UNIT, WRONG_ZIP, GARBAGE)


@dataclass(frozen=True)
class NoiseConfig:
    """Probabilities of each noise class (remainder is CLEAN).

    Defaults are tuned so the end-to-end BQT hit rate lands in the paper's
    observed 82-96% band, with the exact per-ISP value determined by each
    BAT's matcher strictness.
    """

    p_variant: float = 0.30
    p_typo: float = 0.08
    p_wrong_number: float = 0.04
    p_missing_unit: float = 0.50  # applied only to multi-dwelling addresses
    p_wrong_zip: float = 0.015
    p_garbage: float = 0.01

    def __post_init__(self) -> None:
        total = (
            self.p_variant
            + self.p_typo
            + self.p_wrong_number
            + self.p_wrong_zip
            + self.p_garbage
        )
        if total > 1.0:
            raise ConfigurationError(
                f"noise probabilities sum to {total:.3f} > 1"
            )
        for name in (
            "p_variant",
            "p_typo",
            "p_wrong_number",
            "p_missing_unit",
            "p_wrong_zip",
            "p_garbage",
        ):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be a probability")

    @classmethod
    def noiseless(cls) -> "NoiseConfig":
        """A configuration with no noise at all (ablation/testing)."""
        return cls(
            p_variant=0.0,
            p_typo=0.0,
            p_wrong_number=0.0,
            p_missing_unit=0.0,
            p_wrong_zip=0.0,
            p_garbage=0.0,
        )


@dataclass(frozen=True)
class NoisyAddress:
    """One feed entry: the noisy public spelling of a true address.

    ``truth`` is retained for pipeline validation only — the curation
    pipeline and analysis layer never read it.
    """

    street_line: str
    zip_code: str
    city: str
    state: str
    noise_class: str
    truth: Address

    def line(self) -> str:
        display_city = " ".join(w.capitalize() for w in self.city.split("-"))
        return f"{self.street_line}, {display_city}, {self.state} {self.zip_code}"


_VARIANT_SPELLINGS: dict[str, tuple[str, ...]] = {
    full: (abbr, abbr.capitalize(), f"{abbr.capitalize()}.", full.upper())
    for full, abbr in SUFFIX_ABBREVIATIONS.items()
}


class NoiseModel:
    """Applies crowdsourced noise to canonical addresses."""

    def __init__(self, config: NoiseConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng

    def _pick_class(self, address: Address) -> str:
        cfg = self.config
        # Unit-dropping applies independently to MDU addresses first: a
        # crowdsourced record for an apartment frequently lacks the unit.
        if address.is_multi_dwelling and self._rng.random() < cfg.p_missing_unit:
            return NoiseClass.MISSING_UNIT
        roll = self._rng.random()
        thresholds = (
            (cfg.p_garbage, NoiseClass.GARBAGE),
            (cfg.p_wrong_zip, NoiseClass.WRONG_ZIP),
            (cfg.p_wrong_number, NoiseClass.WRONG_NUMBER),
            (cfg.p_typo, NoiseClass.TYPO),
            (cfg.p_variant, NoiseClass.VARIANT),
        )
        cumulative = 0.0
        for probability, noise_class in thresholds:
            cumulative += probability
            if roll < cumulative:
                return noise_class
        return NoiseClass.CLEAN

    def corrupt(self, address: Address) -> NoisyAddress:
        """Produce the feed entry for one canonical address."""
        noise_class = self._pick_class(address)
        street_line = address.street_line()
        zip_code = address.zip_code

        if noise_class == NoiseClass.VARIANT:
            street_line = self._apply_variant(address)
        elif noise_class == NoiseClass.TYPO:
            street_line = self._apply_typo(address)
        elif noise_class == NoiseClass.WRONG_NUMBER:
            street_line = self._apply_wrong_number(address)
        elif noise_class == NoiseClass.MISSING_UNIT:
            street_line = address.without_unit().street_line()
        elif noise_class == NoiseClass.WRONG_ZIP:
            zip_code = self._apply_wrong_zip(address)
        elif noise_class == NoiseClass.GARBAGE:
            street_line = self._apply_garbage(address)

        return NoisyAddress(
            street_line=street_line,
            zip_code=zip_code,
            city=address.city,
            state=address.state,
            noise_class=noise_class,
            truth=address,
        )

    def _apply_variant(self, address: Address) -> str:
        variants = _VARIANT_SPELLINGS.get(address.street_suffix.upper())
        if not variants:
            return address.street_line()
        suffix = variants[self._rng.integers(0, len(variants))]
        parts = [str(address.house_number), address.street_name, suffix]
        if address.unit:
            unit = address.unit
            if unit.lower().startswith("apt ") and self._rng.random() < 0.5:
                unit = "#" + unit[4:]
            parts.append(unit)
        return " ".join(parts)

    def _apply_typo(self, address: Address) -> str:
        name = list(address.street_name)
        position = int(self._rng.integers(0, len(name)))
        operation = self._rng.random()
        if operation < 0.4 and len(name) > 3:
            del name[position]  # deletion
        elif operation < 0.7:
            name.insert(position, name[position])  # duplication
        else:
            swap = min(position + 1, len(name) - 1)
            name[position], name[swap] = name[swap], name[position]  # transposition
        mangled = "".join(name)
        parts = [str(address.house_number), mangled, address.street_suffix]
        if address.unit:
            parts.append(address.unit)
        return " ".join(parts)

    def _apply_wrong_number(self, address: Address) -> str:
        delta = int(self._rng.choice([-4, -2, 2, 4]))
        wrong = max(1, address.house_number + delta)
        parts = [str(wrong), address.street_name, address.street_suffix]
        if address.unit:
            parts.append(address.unit)
        return " ".join(parts)

    def _apply_wrong_zip(self, address: Address) -> str:
        digits = list(address.zip_code)
        digits[-1] = str((int(digits[-1]) + 1 + int(self._rng.integers(0, 8))) % 10)
        return "".join(digits)

    def _apply_garbage(self, address: Address) -> str:
        # Truncate the street name beyond recognizability.
        stub = address.street_name[:2]
        return f"{address.house_number} {stub}"
