"""Street-name corpora for the synthetic address generator."""

from __future__ import annotations

__all__ = ["BASE_NAMES", "SUFFIXES", "UNIT_STYLES"]

# Common US street base names (tree species, presidents, ordinals, local
# flavor).  Uniqueness within a ZIP is enforced by the generator, which
# samples (base, suffix) pairs without replacement.
BASE_NAMES: tuple[str, ...] = (
    "Magnolia", "Oak", "Maple", "Cedar", "Pine", "Elm", "Walnut", "Willow",
    "Birch", "Chestnut", "Sycamore", "Juniper", "Cypress", "Laurel",
    "Washington", "Jefferson", "Lincoln", "Madison", "Monroe", "Jackson",
    "Adams", "Franklin", "Grant", "Harrison", "Tyler", "Hayes",
    "First", "Second", "Third", "Fourth", "Fifth", "Sixth", "Seventh",
    "Eighth", "Ninth", "Tenth", "Eleventh", "Twelfth",
    "Main", "Market", "Church", "Mill", "Bridge", "Canal", "River", "Lake",
    "Hill", "Valley", "Meadow", "Prairie", "Sunset", "Highland", "Fairview",
    "Ridge", "Park", "Grove", "Garden", "Orchard", "Vineyard", "Harbor",
    "Bayou", "Pelican", "Mockingbird", "Cardinal", "Sparrow", "Falcon",
    "Armstrong", "Bienville", "Carondelet", "Dauphine", "Esplanade",
    "Frenchmen", "Galvez", "Iberville", "Josephine", "Kerlerec",
)

SUFFIXES: tuple[str, ...] = (
    "Street", "Avenue", "Boulevard", "Drive", "Court", "Lane", "Road",
    "Place", "Circle", "Terrace", "Parkway", "Way", "Trail", "Square",
)

# Unit naming styles for multi-dwelling buildings.
UNIT_STYLES: tuple[str, ...] = ("Apt {n}", "Unit {n}", "Apt {letter}")
