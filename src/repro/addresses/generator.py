"""Synthetic residential address generation.

Builds the two views of a city's addresses that the pipeline needs:

* the **canonical registry** — the ground-truth address stock, which seeds
  every ISP's serviceability database; and
* the **residential feed** — the noisy crowdsourced view (our stand-in for
  the Zillow ZTRAX dataset) from which the curation pipeline samples.

Street names are unique within each ZIP code so that canonical keys are
unambiguous; multi-dwelling units get per-unit canonical records while the
feed frequently lists only the building address (driving the paper's MDU
workflow).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AddressError, ConfigurationError
from ..geo.grid import CityGrid
from ..seeding import derive_seed
from .model import Address
from .noise import NoiseConfig, NoiseModel, NoisyAddress
from .streetnames import BASE_NAMES, SUFFIXES, UNIT_STYLES

__all__ = ["AddressGeneratorConfig", "CityAddressBook", "generate_city_addresses"]

_STATE_ZIP_PREFIX: dict[str, int] = {
    "AL": 35, "AZ": 85, "CA": 90, "FL": 33, "GA": 30, "IL": 60, "IN": 46,
    "KS": 67, "KY": 40, "LA": 70, "MA": 2, "MD": 21, "MO": 64, "MT": 59,
    "NC": 27, "ND": 58, "NE": 68, "NM": 87, "NV": 89, "NY": 10, "OH": 44,
    "OK": 73, "PA": 19, "TX": 78, "VA": 23, "WA": 98, "WI": 53,
}


@dataclass(frozen=True)
class AddressGeneratorConfig:
    """Tunable knobs for per-city address generation.

    Attributes:
        addresses_per_block_group: Number of building addresses generated in
            each block group (the feed and registry sizes scale with this).
        block_groups_per_zip: How many contiguous block groups share a ZIP.
        mdu_fraction: Fraction of buildings that are multi-dwelling.
        max_units: Maximum units in one multi-dwelling building.
        noise: Crowdsourced-noise configuration for the feed.
    """

    addresses_per_block_group: int = 120
    block_groups_per_zip: int = 8
    mdu_fraction: float = 0.12
    max_units: int = 8
    noise: NoiseConfig = NoiseConfig()

    def __post_init__(self) -> None:
        if self.addresses_per_block_group < 1:
            raise ConfigurationError("addresses_per_block_group must be >= 1")
        if self.block_groups_per_zip < 1:
            raise ConfigurationError("block_groups_per_zip must be >= 1")
        if not 0.0 <= self.mdu_fraction <= 1.0:
            raise ConfigurationError("mdu_fraction must be a probability")
        if self.max_units < 2:
            raise ConfigurationError("max_units must be >= 2")


class CityAddressBook:
    """All canonical addresses and feed entries for one city."""

    def __init__(
        self,
        city: str,
        canonical: tuple[Address, ...],
        feed: tuple[NoisyAddress, ...],
    ) -> None:
        self.city = city
        self.canonical = canonical
        self.feed = feed
        self._canonical_by_bg: dict[str, list[Address]] = {}
        for address in canonical:
            self._canonical_by_bg.setdefault(address.block_group, []).append(address)
        self._feed_by_bg: dict[str, list[NoisyAddress]] = {}
        for entry in feed:
            self._feed_by_bg.setdefault(entry.truth.block_group, []).append(entry)

    @property
    def block_groups(self) -> tuple[str, ...]:
        return tuple(self._feed_by_bg)

    def canonical_in(self, block_group: str) -> tuple[Address, ...]:
        try:
            return tuple(self._canonical_by_bg[block_group])
        except KeyError:
            raise AddressError(
                f"no addresses generated for block group {block_group!r}"
            ) from None

    def feed_in(self, block_group: str) -> tuple[NoisyAddress, ...]:
        try:
            return tuple(self._feed_by_bg[block_group])
        except KeyError:
            raise AddressError(
                f"no feed entries for block group {block_group!r}"
            ) from None

    def __len__(self) -> int:
        return len(self.feed)


def _zip_for(city_index: int, state: str, zip_ordinal: int) -> str:
    prefix = _STATE_ZIP_PREFIX.get(state, 50)
    # Compose a plausible 5-digit ZIP: state prefix, city digit, ordinal.
    value = prefix * 1000 + (city_index % 10) * 100 + (zip_ordinal % 100)
    return f"{value:05d}"


def generate_city_addresses(
    grid: CityGrid,
    config: AddressGeneratorConfig,
    seed: int,
) -> CityAddressBook:
    """Generate the canonical registry and noisy feed for one city.

    Generation is deterministic in ``(grid, config, seed)``.  Each block
    group receives 3-6 streets; street (name, suffix) pairs are sampled
    without replacement within each ZIP so canonical keys stay unique.
    """
    city = grid.city
    rng = np.random.default_rng(derive_seed(seed, "addresses", city.name))
    noise_model = NoiseModel(
        config.noise, np.random.default_rng(derive_seed(seed, "feed-noise", city.name))
    )
    city_index = sum(map(ord, city.name))

    all_name_pairs = [(base, suffix) for base in BASE_NAMES for suffix in SUFFIXES]
    canonical: list[Address] = []
    feed: list[NoisyAddress] = []

    zip_ordinal = -1
    available_pairs: list[tuple[str, str]] = []
    current_zip = ""

    for bg in grid:
        if bg.index % config.block_groups_per_zip == 0:
            # Start a new ZIP: refresh the street-name pool.
            zip_ordinal += 1
            current_zip = _zip_for(city_index, city.state, zip_ordinal)
            order = rng.permutation(len(all_name_pairs))
            available_pairs = [all_name_pairs[i] for i in order]

        n_streets = int(rng.integers(3, 7))
        buildings_per_street = int(
            np.ceil(config.addresses_per_block_group / n_streets)
        )
        built = 0
        for street_index in range(n_streets):
            if not available_pairs:
                raise AddressError(
                    f"street-name pool exhausted in ZIP {current_zip} "
                    f"({city.name}); lower block_groups_per_zip"
                )
            base_name, suffix = available_pairs.pop()
            start_number = int(rng.integers(1, 40)) * 100
            for building in range(buildings_per_street):
                if built >= config.addresses_per_block_group:
                    break
                house_number = start_number + building * 2 + int(rng.integers(0, 2))
                is_mdu = rng.random() < config.mdu_fraction
                units: list[str | None]
                if is_mdu:
                    n_units = int(rng.integers(2, config.max_units + 1))
                    style = UNIT_STYLES[int(rng.integers(0, len(UNIT_STYLES)))]
                    units = [
                        _format_unit(style, unit_index)
                        for unit_index in range(1, n_units + 1)
                    ]
                else:
                    units = [None]
                for unit in units:
                    canonical.append(
                        Address(
                            house_number=house_number,
                            street_name=base_name,
                            street_suffix=suffix,
                            unit=unit,
                            city=city.name,
                            state=city.state,
                            zip_code=current_zip,
                            block_group=bg.geoid,
                        )
                    )
                # The feed lists one entry per *building*; for MDUs the entry
                # is tied to the first unit (which noise may then strip).
                building_address = canonical[-len(units)]
                feed.append(noise_model.corrupt(building_address))
                built += 1
            if built >= config.addresses_per_block_group:
                break

    return CityAddressBook(city.name, tuple(canonical), tuple(feed))


def _format_unit(style: str, unit_index: int) -> str:
    if "{letter}" in style:
        return style.format(letter=chr(ord("A") + (unit_index - 1) % 26))
    return style.format(n=unit_index)
