"""Street-address data model.

Addresses flow through the system in two forms:

* **Canonical records** — what an ISP's serviceability database holds.
  These are fully normalized and unique.
* **Feed strings** — what the Zillow-like residential feed provides.  These
  are crowdsourced and noisy: inconsistent abbreviations, typos, missing
  apartment units, occasionally wrong ZIP codes.

The mismatch between the two is precisely what makes the paper's querying
problem hard (Section 3.1), so the model keeps both representations
first-class.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Address", "format_address_line"]


@dataclass(frozen=True)
class Address:
    """A single street address.

    Attributes:
        house_number: Numeric house/building number.
        street_name: Street base name, e.g. ``"Magnolia"``.
        street_suffix: Full (unabbreviated) suffix, e.g. ``"Avenue"``.
        unit: Unit designator for multi-dwelling units, e.g. ``"Apt 3"``;
            ``None`` for single-family addresses.
        city: Canonical city key, e.g. ``"new-orleans"``.
        state: Two-letter state code.
        zip_code: Five-digit ZIP code string.
        block_group: Geoid of the containing census block group.
    """

    house_number: int
    street_name: str
    street_suffix: str
    unit: str | None
    city: str
    state: str
    zip_code: str
    block_group: str

    @property
    def is_multi_dwelling(self) -> bool:
        return self.unit is not None

    def line(self) -> str:
        """Render the full single-line form of the address."""
        return format_address_line(
            self.house_number,
            self.street_name,
            self.street_suffix,
            self.unit,
            self.city,
            self.state,
            self.zip_code,
        )

    def street_line(self) -> str:
        """Render only the street part (no city/state/zip)."""
        parts = [str(self.house_number), self.street_name, self.street_suffix]
        if self.unit:
            parts.append(self.unit)
        return " ".join(parts)

    def without_unit(self) -> "Address":
        """The building-level address (unit stripped)."""
        if self.unit is None:
            return self
        return replace(self, unit=None)

    def with_unit(self, unit: str) -> "Address":
        return replace(self, unit=unit)


def format_address_line(
    house_number: int,
    street_name: str,
    street_suffix: str,
    unit: str | None,
    city: str,
    state: str,
    zip_code: str,
) -> str:
    """Format address components into the standard single-line form.

    >>> format_address_line(12, "Magnolia", "Avenue", "Apt 3",
    ...                     "new-orleans", "LA", "70112")
    '12 Magnolia Avenue Apt 3, New Orleans, LA 70112'
    """
    display_city = " ".join(word.capitalize() for word in city.split("-"))
    street = f"{house_number} {street_name} {street_suffix}"
    if unit:
        street = f"{street} {unit}"
    return f"{street}, {display_city}, {state} {zip_code}"
