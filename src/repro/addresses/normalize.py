"""USPS-style street-address normalization.

The paper notes that "for the same street address, some databases might use
'Ave' instead of Avenue and 'CT' or 'Ct' instead of Court" (Section 3.3).
This module implements the normalization layer both sides use: the ISP-side
BAT normalizes incoming queries before matching against its serviceability
database, and BQT normalizes suggestion strings before string-matching them
against the input address.

The abbreviation table follows USPS Publication 28, Appendix C (the common
subset covering the suffixes our street generator produces).
"""

from __future__ import annotations

import re

__all__ = [
    "SUFFIX_ABBREVIATIONS",
    "UNIT_DESIGNATORS",
    "normalize_token",
    "normalize_street_line",
    "normalize_zip",
    "canonical_key",
    "tokenize",
]

# Full suffix name -> USPS standard abbreviation.
SUFFIX_ABBREVIATIONS: dict[str, str] = {
    "ALLEY": "ALY",
    "AVENUE": "AVE",
    "BOULEVARD": "BLVD",
    "CIRCLE": "CIR",
    "COURT": "CT",
    "DRIVE": "DR",
    "EXPRESSWAY": "EXPY",
    "HIGHWAY": "HWY",
    "LANE": "LN",
    "PARKWAY": "PKWY",
    "PLACE": "PL",
    "ROAD": "RD",
    "SQUARE": "SQ",
    "STREET": "ST",
    "TERRACE": "TER",
    "TRAIL": "TRL",
    "WAY": "WAY",
}

# Every spelling (full, standard, and common variants) -> standard form.
_SUFFIX_VARIANTS: dict[str, str] = {}
for _full, _abbr in SUFFIX_ABBREVIATIONS.items():
    _SUFFIX_VARIANTS[_full] = _abbr
    _SUFFIX_VARIANTS[_abbr] = _abbr
_SUFFIX_VARIANTS.update(
    {
        "AV": "AVE",
        "AVE.": "AVE",
        "BOUL": "BLVD",
        "BLVD.": "BLVD",
        "CRT": "CT",
        "CT.": "CT",
        "DRV": "DR",
        "DR.": "DR",
        "LA": "LN",
        "LN.": "LN",
        "PKY": "PKWY",
        "RD.": "RD",
        "STR": "ST",
        "ST.": "ST",
        "TERR": "TER",
        "TR": "TRL",
    }
)

# Unit designator variants -> standard form.
UNIT_DESIGNATORS: dict[str, str] = {
    "APARTMENT": "APT",
    "APT": "APT",
    "APT.": "APT",
    "#": "APT",
    "UNIT": "UNIT",
    "STE": "STE",
    "SUITE": "STE",
    "FL": "FL",
    "FLOOR": "FL",
}

_WHITESPACE_RE = re.compile(r"\s+")
_PUNCT_RE = re.compile(r"[.,;]+")


def tokenize(text: str) -> list[str]:
    """Upper-case and split a street line into clean tokens.

    >>> tokenize("12  Magnolia Ave., Apt 3")
    ['12', 'MAGNOLIA', 'AVE', 'APT', '3']
    """
    cleaned = _PUNCT_RE.sub(" ", text.upper())
    # Keep "#3" recognizable as a unit marker by splitting the hash off.
    cleaned = cleaned.replace("#", " # ")
    return [token for token in _WHITESPACE_RE.split(cleaned) if token]


def normalize_token(token: str) -> str:
    """Normalize one token: suffix and unit-designator variants collapse."""
    upper = token.upper().rstrip(".")
    if upper in _SUFFIX_VARIANTS:
        return _SUFFIX_VARIANTS[upper]
    if upper in UNIT_DESIGNATORS:
        return UNIT_DESIGNATORS[upper]
    return upper


def normalize_street_line(line: str) -> str:
    """Normalize a full street line to its canonical comparable form.

    >>> normalize_street_line("12 Magnolia Avenue Apt 3")
    '12 MAGNOLIA AVE APT 3'
    >>> normalize_street_line("12 magnolia ave. #3")
    '12 MAGNOLIA AVE APT 3'
    """
    return " ".join(normalize_token(token) for token in tokenize(line))


def normalize_zip(zip_code: str) -> str:
    """Reduce a ZIP or ZIP+4 to its five-digit base."""
    digits = re.sub(r"\D", "", zip_code)
    return digits[:5]


def canonical_key(street_line: str, zip_code: str) -> str:
    """The key under which an address is stored and matched.

    Two spellings of the same address (modulo USPS abbreviation variants,
    case, and punctuation) map to the same key.  Typos, wrong house numbers
    and missing units do NOT — those are the noise BQT must handle through
    the suggestion workflow.
    """
    return f"{normalize_street_line(street_line)}|{normalize_zip(zip_code)}"
