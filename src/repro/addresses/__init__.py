"""Synthetic residential street-address substrate (Zillow/ZTRAX stand-in)."""

from .database import AddressIndex, build_city_index
from .generator import (
    AddressGeneratorConfig,
    CityAddressBook,
    generate_city_addresses,
)
from .model import Address, format_address_line
from .noise import NoiseClass, NoiseConfig, NoiseModel, NoisyAddress
from .normalize import (
    SUFFIX_ABBREVIATIONS,
    UNIT_DESIGNATORS,
    canonical_key,
    normalize_street_line,
    normalize_token,
    normalize_zip,
    tokenize,
)

__all__ = [
    "AddressIndex",
    "build_city_index",
    "AddressGeneratorConfig",
    "CityAddressBook",
    "generate_city_addresses",
    "Address",
    "format_address_line",
    "NoiseClass",
    "NoiseConfig",
    "NoiseModel",
    "NoisyAddress",
    "SUFFIX_ABBREVIATIONS",
    "UNIT_DESIGNATORS",
    "canonical_key",
    "normalize_street_line",
    "normalize_token",
    "normalize_zip",
    "tokenize",
]
