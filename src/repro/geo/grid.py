"""Synthetic census block-group geometry.

The paper aggregates all of its metrics at the census block-group level and
computes spatial statistics (Moran's I) over block-group geometries.  We
replace the Census TIGER shapefiles + geopandas stack with a deterministic
rectangular grid per city: each block group is one grid cell with a polygon,
a centroid and grid coordinates.  A grid preserves everything the analysis
needs — contiguity (queen adjacency), distances between centroids, and a
plottable spatial layout — without any GIS dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError, GeographyError
from .cities import CityInfo

__all__ = ["BlockGroup", "CityGrid", "scaled_block_group_count"]

# Approximate angular size of one block group cell, in degrees.  The value
# only matters for plotting and for distance-based statistics; 0.01 deg is
# roughly 1.1 km, a plausible urban block-group footprint.
CELL_SIZE_DEG = 0.01

# Minimum number of block groups in a scaled-down city.  Spatial statistics
# and the income split both need a handful of cells to be meaningful.
MIN_BLOCK_GROUPS = 4


@dataclass(frozen=True)
class BlockGroup:
    """One synthetic census block group (a grid cell).

    Attributes:
        geoid: Globally unique identifier, e.g. ``"new-orleans-bg-0042"``.
        city: Canonical city key.
        index: Dense index of the block group within its city grid.
        row / col: Grid coordinates within the city.
        latitude / longitude: Centroid coordinates.
        population: Synthetic resident count (Census block groups hold
            roughly 600-3000 people).
    """

    geoid: str
    city: str
    index: int
    row: int
    col: int
    latitude: float
    longitude: float
    population: int

    @property
    def polygon(self) -> tuple[tuple[float, float], ...]:
        """Cell polygon as (longitude, latitude) corners, counter-clockwise."""
        half = CELL_SIZE_DEG / 2.0
        west, east = self.longitude - half, self.longitude + half
        south, north = self.latitude - half, self.latitude + half
        return ((west, south), (east, south), (east, north), (west, north))

    def centroid(self) -> tuple[float, float]:
        """Return (longitude, latitude) of the cell centre."""
        return (self.longitude, self.latitude)


def scaled_block_group_count(city: CityInfo, scale: float) -> int:
    """Number of block groups for ``city`` at a given world scale.

    ``scale=1.0`` reproduces the Table-2 block-group count; smaller scales
    shrink the grid proportionally but never below :data:`MIN_BLOCK_GROUPS`.
    """
    if not 0.0 < scale <= 1.0:
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
    return max(MIN_BLOCK_GROUPS, int(round(city.block_groups * scale)))


class CityGrid:
    """A city's block groups laid out on a near-square grid.

    The grid is centred on the city's real-world coordinates.  Grid shape is
    chosen as the most-square factorization of the cell count: ``rows =
    floor(sqrt(n))`` rounded to cover ``n`` cells, with the final row
    possibly partial.  Cell (0, 0) is the south-west corner.
    """

    def __init__(self, city: CityInfo, n_block_groups: int, seed: int = 0) -> None:
        if n_block_groups < 1:
            raise ConfigurationError("a city grid needs at least one block group")
        self.city = city
        self.n_block_groups = n_block_groups
        self.rows = max(1, int(math.floor(math.sqrt(n_block_groups))))
        self.cols = int(math.ceil(n_block_groups / self.rows))
        self._block_groups = self._build_block_groups(seed)
        self._by_geoid = {bg.geoid: bg for bg in self._block_groups}
        self._index_by_cell = {
            (bg.row, bg.col): bg.index for bg in self._block_groups
        }

    def _build_block_groups(self, seed: int) -> list[BlockGroup]:
        from ..seeding import rng_for

        rng = rng_for(seed, "grid-population", self.city.name)
        # Population per block group: Census targets 600-3000 residents.
        populations = rng.integers(600, 3001, size=self.n_block_groups)
        origin_lat = self.city.latitude - (self.rows / 2.0) * CELL_SIZE_DEG
        origin_lon = self.city.longitude - (self.cols / 2.0) * CELL_SIZE_DEG
        block_groups = []
        for index in range(self.n_block_groups):
            row, col = divmod(index, self.cols)
            block_groups.append(
                BlockGroup(
                    geoid=f"{self.city.name}-bg-{index:04d}",
                    city=self.city.name,
                    index=index,
                    row=row,
                    col=col,
                    latitude=origin_lat + (row + 0.5) * CELL_SIZE_DEG,
                    longitude=origin_lon + (col + 0.5) * CELL_SIZE_DEG,
                    population=int(populations[index]),
                )
            )
        return block_groups

    def __len__(self) -> int:
        return self.n_block_groups

    def __iter__(self):
        return iter(self._block_groups)

    @property
    def block_groups(self) -> tuple[BlockGroup, ...]:
        return tuple(self._block_groups)

    def by_index(self, index: int) -> BlockGroup:
        try:
            return self._block_groups[index]
        except IndexError:
            raise GeographyError(
                f"{self.city.name} has {self.n_block_groups} block groups; "
                f"index {index} is out of range"
            ) from None

    def by_geoid(self, geoid: str) -> BlockGroup:
        try:
            return self._by_geoid[geoid]
        except KeyError:
            raise GeographyError(f"unknown block group geoid: {geoid!r}") from None

    def cell_index(self, row: int, col: int) -> int | None:
        """Dense index of the cell at (row, col), or None if outside the grid."""
        return self._index_by_cell.get((row, col))

    def neighbors(self, index: int, queen: bool = True) -> list[int]:
        """Indices of grid cells contiguous with ``index``.

        Queen contiguity (the default, and what the paper's Moran's I uses)
        counts diagonal touching; rook contiguity counts shared edges only.
        """
        bg = self.by_index(index)
        if queen:
            offsets = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]
        else:
            offsets = [(-1, 0), (0, -1), (0, 1), (1, 0)]
        found = []
        for dr, dc in offsets:
            neighbor = self.cell_index(bg.row + dr, bg.col + dc)
            if neighbor is not None:
                found.append(neighbor)
        return found
