"""Spatially correlated random fields on city grids.

The socioeconomic structure of real cities is spatially autocorrelated:
wealthy and poor neighborhoods come in contiguous clusters, not salt-and-
pepper noise.  The paper's income analysis (Section 5.5) and spatial
clustering results (Table 3) both depend on this structure, so our synthetic
ACS substrate generates block-group attributes from smoothed Gaussian
fields rather than i.i.d. draws.

The generator is a simple separable box-smoother applied repeatedly to white
noise on the grid, then re-standardized.  Three smoothing passes with radius
2 give empirical Moran's I around 0.6-0.8 on mid-size grids, comfortably in
the range needed to drive the paper's observations.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .grid import CityGrid

__all__ = ["smoothed_gaussian_field", "field_to_grid_values", "correlated_uniform_field"]


def _box_smooth_1d(array: np.ndarray, radius: int, axis: int) -> np.ndarray:
    """Moving-average smooth along one axis with edge clamping."""
    if radius < 1:
        return array
    kernel = np.ones(2 * radius + 1, dtype=float)
    kernel /= kernel.sum()
    padded = np.apply_along_axis(
        lambda row: np.convolve(
            np.pad(row, radius, mode="edge"), kernel, mode="valid"
        ),
        axis,
        array,
    )
    return padded


def smoothed_gaussian_field(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    smoothing_radius: int = 2,
    passes: int = 3,
) -> np.ndarray:
    """Return a standardized (mean 0, std 1) correlated field of shape (rows, cols).

    Args:
        rows / cols: Grid shape.
        rng: Source of randomness.
        smoothing_radius: Box-filter radius in cells; larger values produce
            longer-range correlation.
        passes: Number of smoothing passes; three passes approximate a
            Gaussian kernel (central limit of box filters).
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError("field shape must be at least 1x1")
    field = rng.standard_normal((rows, cols))
    for _ in range(max(0, passes)):
        field = _box_smooth_1d(field, smoothing_radius, axis=0)
        field = _box_smooth_1d(field, smoothing_radius, axis=1)
    std = float(field.std())
    if std > 0:
        field = (field - field.mean()) / std
    return field


def correlated_uniform_field(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    smoothing_radius: int = 2,
    passes: int = 3,
) -> np.ndarray:
    """Correlated field mapped through the normal CDF to Uniform(0, 1).

    Useful for thresholding: selecting cells where the field exceeds ``1-p``
    yields a spatially clustered subset containing roughly a ``p`` fraction
    of cells.
    """
    from scipy.stats import norm

    gaussian = smoothed_gaussian_field(rows, cols, rng, smoothing_radius, passes)
    return norm.cdf(gaussian)


def field_to_grid_values(field: np.ndarray, grid: CityGrid) -> np.ndarray:
    """Flatten a (rows, cols) field into per-block-group values.

    The last grid row may be partial (the grid covers ``n`` cells of a
    ``rows x cols`` rectangle), so we index the field by each block group's
    grid coordinates rather than reshaping.
    """
    if field.shape != (grid.rows, grid.cols):
        raise ConfigurationError(
            f"field shape {field.shape} does not match grid "
            f"({grid.rows}, {grid.cols})"
        )
    values = np.empty(len(grid), dtype=float)
    for bg in grid:
        values[bg.index] = field[bg.row, bg.col]
    return values
