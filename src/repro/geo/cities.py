"""City registry reconstructed from Table 2 of the paper.

The paper studies thirty US cities in 27 states.  For each city, Table 2
reports the number of census block groups, the number of street addresses
queried (thousands), population density (thousands per square mile), median
household income (thousands of dollars), and which of the seven major ISPs
serve the city.

The per-city ISP assignment in the published table is a bullet matrix whose
column totals are (AT&T=14, Verizon=5, CenturyLink=7, Frontier=4,
Spectrum=13, Cox=8, Xfinity=6).  We reconstruct an assignment that matches
those totals exactly, respects the paper's market-structure facts (at most
two major ISPs per city, never two cable or two DSL/fiber ISPs competing),
and follows the real-world footprints of the providers (e.g. Cox in New
Orleans, Fios in the Northeast corridor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UnknownCityError

__all__ = [
    "CityInfo",
    "CITIES",
    "CITY_NAMES",
    "get_city",
    "cities_served_by",
    "total_block_groups",
    "total_addresses_thousands",
]


@dataclass(frozen=True)
class CityInfo:
    """Static description of one study city (one row of Table 2).

    Attributes:
        name: Canonical lower-case hyphenated city key, e.g. ``"new-orleans"``.
        display_name: Human-readable name, e.g. ``"New Orleans"``.
        state: Two-letter state code.
        block_groups: Number of census block groups covered (Table 2).
        addresses_thousands: Street addresses queried, in thousands (Table 2).
        population_density_thousands: Population density in thousands per
            square mile (Table 2).
        median_income_thousands: Median yearly household income in $k.
        isps: Names of major ISPs active in the city (1 or 2 entries).
        latitude / longitude: Approximate city-center coordinates, used to
            lay out the synthetic block-group grid on a plausible map.
    """

    name: str
    display_name: str
    state: str
    block_groups: int
    addresses_thousands: float
    population_density_thousands: float
    median_income_thousands: float
    isps: tuple[str, ...]
    latitude: float
    longitude: float

    @property
    def addresses(self) -> int:
        """Approximate number of queried street addresses (not thousands)."""
        return int(round(self.addresses_thousands * 1000))

    @property
    def cable_isps(self) -> tuple[str, ...]:
        from ..isp.providers import is_cable

        return tuple(isp for isp in self.isps if is_cable(isp))

    @property
    def dsl_fiber_isps(self) -> tuple[str, ...]:
        from ..isp.providers import is_cable

        return tuple(isp for isp in self.isps if not is_cable(isp))


def _city(
    display_name: str,
    state: str,
    block_groups: int,
    addresses_thousands: float,
    density: float,
    income: float,
    isps: tuple[str, ...],
    lat: float,
    lon: float,
) -> CityInfo:
    name = display_name.lower().replace(" ", "-").replace(".", "")
    return CityInfo(
        name=name,
        display_name=display_name,
        state=state,
        block_groups=block_groups,
        addresses_thousands=addresses_thousands,
        population_density_thousands=density,
        median_income_thousands=income,
        isps=isps,
        latitude=lat,
        longitude=lon,
    )


# Table 2, one entry per row.  ISP keys: att, verizon, centurylink, frontier,
# spectrum, cox, xfinity.
CITIES: dict[str, CityInfo] = {
    city.name: city
    for city in (
        _city("Albuquerque", "NM", 387, 14, 1.8, 53, ("centurylink",), 35.0844, -106.6504),
        _city("Atlanta", "GA", 389, 12, 1.2, 65, ("att", "xfinity"), 33.7490, -84.3880),
        _city("Austin", "TX", 487, 25, 1.7, 74, ("att", "spectrum"), 30.2672, -97.7431),
        _city("Baltimore", "MD", 1188, 42, 1.7, 81, ("verizon", "xfinity"), 39.2904, -76.6122),
        _city("Billings", "MT", 98, 3, 1.1, 61, ("centurylink", "spectrum"), 45.7833, -108.5007),
        _city("Birmingham", "AL", 354, 24, 0.716, 47, ("att", "spectrum"), 33.5186, -86.8104),
        _city("Boston", "MA", 373, 17, 8.4, 72, ("verizon", "xfinity"), 42.3601, -71.0589),
        _city("Charlotte", "NC", 472, 21, 2.0, 73, ("att", "spectrum"), 35.2271, -80.8431),
        _city("Chicago", "IL", 1933, 86, 3.8, 64, ("att", "xfinity"), 41.8781, -87.6298),
        _city("Cleveland", "OH", 754, 35, 4.8, 31, ("att", "spectrum"), 41.4993, -81.6944),
        _city("Columbus", "OH", 662, 20, 1.9, 58, ("att", "spectrum"), 39.9612, -82.9988),
        _city("Durham", "NC", 138, 5, 1.0, 59, ("frontier", "spectrum"), 35.9940, -78.8986),
        _city("Fargo", "ND", 67, 5, 1.5, 62, ("centurylink",), 46.8772, -96.7898),
        _city("Fort Wayne", "IN", 209, 11, 0.9, 54, ("frontier", "xfinity"), 41.0793, -85.1394),
        _city("Kansas City", "MO", 305, 15, 1.2, 51, ("att", "spectrum"), 39.0997, -94.5786),
        _city("Los Angeles", "CA", 1787, 90, 8.5, 67, ("att", "spectrum"), 34.0522, -118.2437),
        _city("Las Vegas", "NV", 881, 38, 1.0, 65, ("centurylink", "cox"), 36.1699, -115.1398),
        _city("Louisville", "KY", 505, 41, 1.6, 56, ("att", "spectrum"), 38.2527, -85.7585),
        _city("Milwaukee", "WI", 560, 27, 2.9, 50, ("att", "spectrum"), 43.0389, -87.9065),
        _city("New Orleans", "LA", 439, 67, 2.9, 41, ("att", "cox"), 29.9511, -90.0715),
        _city("New York City", "NY", 1567, 51, 41.7, 96, ("verizon", "spectrum"), 40.7128, -74.0060),
        _city("Oklahoma City", "OK", 493, 20, 1.3, 50, ("att", "cox"), 35.4676, -97.5164),
        _city("Omaha", "NE", 455, 28, 1.7, 62, ("centurylink", "cox"), 41.2565, -95.9345),
        _city("Philadelphia", "PA", 981, 32, 8.0, 46, ("verizon", "xfinity"), 39.9526, -75.1652),
        _city("Phoenix", "AZ", 802, 32, 1.9, 64, ("centurylink", "cox"), 33.4484, -112.0740),
        _city("Santa Barbara", "CA", 211, 6, 2.0, 79, ("frontier", "cox"), 34.4208, -119.6982),
        _city("Seattle", "WA", 634, 28, 2.1, 101, ("centurylink",), 47.6062, -122.3321),
        _city("Tampa", "FL", 536, 25, 1.5, 57, ("frontier", "spectrum"), 27.9506, -82.4572),
        _city("Virginia Beach City", "VA", 112, 4, 1.8, 80, ("verizon", "cox"), 36.8529, -75.9780),
        _city("Wichita", "KS", 304, 13, 1.3, 50, ("att", "cox"), 37.6872, -97.3301),
    )
}

CITY_NAMES: tuple[str, ...] = tuple(CITIES)


def get_city(name: str) -> CityInfo:
    """Look up a city by canonical key or display name.

    Raises:
        UnknownCityError: If the city is not one of the thirty study cities.
    """
    key = name.lower().replace(" ", "-").replace(".", "")
    try:
        return CITIES[key]
    except KeyError:
        raise UnknownCityError(name) from None


def cities_served_by(isp_name: str) -> tuple[CityInfo, ...]:
    """Return the study cities in which ``isp_name`` is active."""
    return tuple(city for city in CITIES.values() if isp_name in city.isps)


def total_block_groups() -> int:
    """Total block groups across all thirty cities (paper: ~18k)."""
    return sum(city.block_groups for city in CITIES.values())


def total_addresses_thousands() -> float:
    """Total queried addresses in thousands (paper: 837k)."""
    return sum(city.addresses_thousands for city in CITIES.values())
