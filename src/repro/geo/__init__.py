"""Synthetic US census geography substrate.

Replaces the Census TIGER + geopandas stack used by the paper with
deterministic per-city block-group grids, spatial weights, and an ACS-like
demographic table.  See DESIGN.md section 2 for the substitution rationale.
"""

from .acs import AcsTable, BlockGroupDemographics, build_acs_table
from .adjacency import (
    SpatialWeights,
    distance_band_weights,
    queen_weights,
    rook_weights,
)
from .cities import (
    CITIES,
    CITY_NAMES,
    CityInfo,
    cities_served_by,
    get_city,
    total_addresses_thousands,
    total_block_groups,
)
from .fields import (
    correlated_uniform_field,
    field_to_grid_values,
    smoothed_gaussian_field,
)
from .grid import BlockGroup, CityGrid, scaled_block_group_count

__all__ = [
    "AcsTable",
    "BlockGroupDemographics",
    "build_acs_table",
    "SpatialWeights",
    "distance_band_weights",
    "queen_weights",
    "rook_weights",
    "CITIES",
    "CITY_NAMES",
    "CityInfo",
    "cities_served_by",
    "get_city",
    "total_addresses_thousands",
    "total_block_groups",
    "correlated_uniform_field",
    "field_to_grid_values",
    "smoothed_gaussian_field",
    "BlockGroup",
    "CityGrid",
    "scaled_block_group_count",
]
