"""Spatial weight matrices over block-group grids.

Moran's I (Section 5.3 of the paper) needs a spatial weights matrix ``W``
encoding which block groups are "near" each other.  The standard choice for
polygon data — and the one the paper's geopandas/PySAL stack uses — is queen
contiguity with row standardization.  This module builds such matrices from
:class:`~repro.geo.grid.CityGrid` objects without any GIS dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .grid import CityGrid

__all__ = ["SpatialWeights", "queen_weights", "rook_weights", "distance_band_weights"]


@dataclass(frozen=True)
class SpatialWeights:
    """Sparse row-standardized spatial weights.

    Attributes:
        n: Number of spatial units.
        neighbors: ``neighbors[i]`` is the array of neighbor indices of unit i.
        weights: ``weights[i]`` are the matching weights (row-standardized:
            each non-isolated row sums to 1).
    """

    n: int
    neighbors: tuple[np.ndarray, ...]
    weights: tuple[np.ndarray, ...]

    @property
    def n_links(self) -> int:
        """Total number of directed neighbor links."""
        return int(sum(len(nbrs) for nbrs in self.neighbors))

    @property
    def islands(self) -> tuple[int, ...]:
        """Indices of units with no neighbors."""
        return tuple(i for i, nbrs in enumerate(self.neighbors) if len(nbrs) == 0)

    def lag(self, values: np.ndarray) -> np.ndarray:
        """Spatial lag: weighted average of each unit's neighbors' values."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n,):
            raise ConfigurationError(
                f"values must have shape ({self.n},), got {values.shape}"
            )
        lagged = np.zeros(self.n, dtype=float)
        for i in range(self.n):
            if len(self.neighbors[i]):
                lagged[i] = float(np.dot(self.weights[i], values[self.neighbors[i]]))
        return lagged

    def dense(self) -> np.ndarray:
        """Materialize the dense ``(n, n)`` weight matrix (tests/small n only)."""
        matrix = np.zeros((self.n, self.n), dtype=float)
        for i in range(self.n):
            matrix[i, self.neighbors[i]] = self.weights[i]
        return matrix


def _row_standardize(neighbor_lists: list[list[int]]) -> SpatialWeights:
    neighbors = []
    weights = []
    for nbrs in neighbor_lists:
        idx = np.asarray(sorted(nbrs), dtype=np.int64)
        neighbors.append(idx)
        if len(idx):
            weights.append(np.full(len(idx), 1.0 / len(idx)))
        else:
            weights.append(np.zeros(0, dtype=float))
    return SpatialWeights(
        n=len(neighbor_lists), neighbors=tuple(neighbors), weights=tuple(weights)
    )


def queen_weights(grid: CityGrid) -> SpatialWeights:
    """Queen-contiguity weights (8-neighborhood), row-standardized."""
    return _row_standardize([grid.neighbors(i, queen=True) for i in range(len(grid))])


def rook_weights(grid: CityGrid) -> SpatialWeights:
    """Rook-contiguity weights (4-neighborhood), row-standardized."""
    return _row_standardize([grid.neighbors(i, queen=False) for i in range(len(grid))])


def distance_band_weights(grid: CityGrid, band_cells: float = 1.5) -> SpatialWeights:
    """Distance-band weights: neighbors within ``band_cells`` grid cells.

    ``band_cells=1.5`` reproduces queen contiguity on a regular grid;
    larger bands produce smoother weight structures and are useful for
    ablation studies of the Moran's I results.
    """
    if band_cells <= 0:
        raise ConfigurationError("band_cells must be positive")
    coords = np.array([(bg.row, bg.col) for bg in grid], dtype=float)
    neighbor_lists: list[list[int]] = []
    for i in range(len(grid)):
        deltas = coords - coords[i]
        dist = np.hypot(deltas[:, 0], deltas[:, 1])
        nbrs = np.flatnonzero((dist > 0) & (dist <= band_cells))
        neighbor_lists.append(list(map(int, nbrs)))
    return _row_standardize(neighbor_lists)
