"""Synthetic American Community Survey (ACS) block-group attributes.

The paper joins its broadband dataset with the ACS 5-year (2019) estimates
of median household income at block-group granularity (Section 5.5).  We
have no Census API access, so this module synthesizes an ACS-like table:
per-block-group median household income drawn from a spatially correlated
lognormal distribution whose city-level median matches Table 2.

The income surface is the root driver of the paper's headline findings: ISP
fiber deployment is income-biased (Figure 9) and spatially clustered
(Table 3).  The deployment model in :mod:`repro.isp.deployment` consumes
this table; the analysis layer later re-joins it to the *measured* dataset,
mirroring the paper's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeographyError
from ..seeding import derive_seed
from .fields import field_to_grid_values, smoothed_gaussian_field
from .grid import CityGrid

__all__ = ["BlockGroupDemographics", "AcsTable", "build_acs_table"]

# Dispersion of log-income across block groups within a city.  A sigma of
# 0.45 gives a ~2.5x interquartile-range ratio, matching the spread of real
# ACS block-group income within large US cities.
LOG_INCOME_SIGMA = 0.45


@dataclass(frozen=True)
class BlockGroupDemographics:
    """ACS-style attributes for one block group."""

    geoid: str
    median_household_income: float
    population: int

    @property
    def income_thousands(self) -> float:
        return self.median_household_income / 1000.0


class AcsTable:
    """Income and population attributes for every block group in a city."""

    def __init__(self, city: str, rows: tuple[BlockGroupDemographics, ...]) -> None:
        self.city = city
        self._rows = rows
        self._by_geoid = {row.geoid: row for row in rows}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    @property
    def rows(self) -> tuple[BlockGroupDemographics, ...]:
        return self._rows

    def income(self, geoid: str) -> float:
        """Median household income (dollars) for one block group."""
        try:
            return self._by_geoid[geoid].median_household_income
        except KeyError:
            raise GeographyError(f"no ACS row for block group {geoid!r}") from None

    def incomes(self) -> np.ndarray:
        """Income vector ordered by block-group index."""
        return np.array([row.median_household_income for row in self._rows])

    def city_median_income(self) -> float:
        """The city-wide median of block-group median incomes.

        The paper splits block groups into "low" (below this value) and
        "high" (above) income classes (Section 5.5).
        """
        return float(np.median(self.incomes()))

    def income_class(self, geoid: str) -> str:
        """Classify one block group as ``"low"`` or ``"high"`` income."""
        return "low" if self.income(geoid) < self.city_median_income() else "high"


def build_acs_table(
    grid: CityGrid,
    seed: int,
    smoothing_radius: int = 2,
    log_sigma: float = LOG_INCOME_SIGMA,
) -> AcsTable:
    """Generate the synthetic ACS table for one city grid.

    Income is ``median_city * exp(sigma * Z)`` where ``Z`` is a standardized
    spatially correlated Gaussian field, so the city's geometric-median
    income matches Table 2 and neighborhoods are income-coherent.
    """
    rng = np.random.default_rng(derive_seed(seed, "acs", grid.city.name))
    field = smoothed_gaussian_field(
        grid.rows, grid.cols, rng, smoothing_radius=smoothing_radius
    )
    z_values = field_to_grid_values(field, grid)
    # Re-center and re-scale over the covered cells (the smoothed rectangle
    # field is standardized globally, but the grid may cover a partial last
    # row and small grids drift): this pins the city median exactly.
    z_values = z_values - np.median(z_values)
    std = float(z_values.std())
    if std > 0:
        z_values = z_values / std
    median_income = grid.city.median_income_thousands * 1000.0
    incomes = median_income * np.exp(log_sigma * z_values)
    rows = tuple(
        BlockGroupDemographics(
            geoid=bg.geoid,
            median_household_income=float(round(incomes[bg.index], 2)),
            population=bg.population,
        )
        for bg in grid
    )
    return AcsTable(grid.city.name, rows)
