"""Shard specs: the serializable unit of curation dispatch.

Before this module, a curation dispatch unit was a *closure*: the pipeline
built a callable over live world objects and handed it to an executor.
That works within one process (and, via pickling tricks, one machine) but
cannot cross a network boundary.  A :class:`ShardSpec` is the same unit as
**pure data** — (world configuration, city, ISP, curation configuration,
optional chunk span, config digest) — and :func:`run_shard_spec` is the
single entry point that rehydrates a spec into byte-identical work in any
process on any machine:

* every local backend (serial / thread / process / async) maps
  :func:`run_shard_spec` over specs via
  :meth:`repro.exec.base.Executor.map_specs`;
* the remote backend (:mod:`repro.exec.remote`) serializes specs with
  :func:`spec_to_wire`, ships them over :mod:`repro.net.rpc`, and a
  ``python -m repro.dataset worker`` process rehydrates them with
  :func:`spec_from_wire` and runs the same entry point.

Byte-identity holds because everything a shard touches is a pure function
of the spec: the city's ground truth (:func:`repro.world.build_city_world`
of ``(world config, city)``), the stratified task sample (seeds derived
from ``(seed, isp, geoid)``), and every stochastic draw inside the replay
(content-keyed per task since the scheduler PR).  The ``tasks`` field is a
**local fast path only** — a parent that already sampled the shard can
pre-slice the span so chunks skip re-sampling — and never crosses the
wire; a remote worker re-derives the identical sample.

Config serialization is a small recursive codec over the frozen config
dataclasses (world + curation knobs).  Tuples encode as JSON arrays and
decode back to tuples, so a round-tripped config compares equal to (and
hashes like) the original — which is what keys the worker-side memos.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from ..errors import ConfigurationError

if TYPE_CHECKING:  # runtime-lazy: repro.dataset imports repro.exec back
    from ..addresses.noise import NoisyAddress
    from ..dataset.curation import CurationConfig
    from ..dataset.records import AddressObservation
    from ..world import CityWorld, WorldConfig

__all__ = [
    "SPEC_WIRE_VERSION",
    "ShardSpec",
    "run_shard_spec",
    "spec_to_wire",
    "spec_from_wire",
    "spec_tasks",
    "full_shard_tasks",
    "spec_cache_keys",
    "seed_city_worlds",
    "release_city_worlds",
]

#: Wire-format version for serialized specs.  Bump on any change to the
#: spec schema or the config codec; a worker refuses mismatched versions
#: (coordinator and workers must run the same code to guarantee
#: byte-identical replays).
SPEC_WIRE_VERSION = 1


@dataclass(frozen=True)
class ShardSpec:
    """One dispatch unit of curation work, as pure data.

    Attributes:
        world: Full world configuration; any process can rebuild the
            shard's city ground truth from it.
        city: City key of the shard.
        isp: ISP key of the shard.
        config: Full curation configuration (sampling, fleet size,
            politeness, per-ISP overrides, pacing).
        start: First task of the span this unit replays.
        stop: One past the last task (None = to the end of the shard).
        config_digest: The shard's incremental-re-curation digest
            (:func:`repro.dataset.curation.shard_config_digest`); labels
            cache entries and scopes worker-side reuse.  Empty means
            "unknown" and disables worker-side caching for this spec.
        tasks: Pre-sliced span of the shard's canonical task list — a
            local fast path so chunks skip re-sampling the city.  Never
            serialized: a remote worker re-derives the identical sample
            from the rest of the spec.
    """

    world: "WorldConfig"
    city: str
    isp: str
    config: "CurationConfig"
    start: int = 0
    stop: int | None = None
    config_digest: str = ""
    tasks: "tuple[NoisyAddress, ...] | None" = None

    @property
    def span(self) -> tuple[int, int | None]:
        return (self.start, self.stop)


# ----------------------------------------------------------------------
# Config wire codec
# ----------------------------------------------------------------------
def _wire_classes() -> dict[str, type]:
    # Imported lazily: repro.dataset.curation imports repro.exec at module
    # load, so importing it here at module scope would be circular.
    from ..addresses.generator import AddressGeneratorConfig
    from ..addresses.noise import NoiseConfig
    from ..dataset.curation import CurationConfig, IspOverride
    from ..dataset.sampling import SamplingConfig
    from ..isp.deployment import DeploymentConfig
    from ..isp.offers import OfferConfig
    from ..net.latency import LatencyModel
    from ..world import WorldConfig

    return {
        cls.__name__: cls
        for cls in (
            WorldConfig,
            AddressGeneratorConfig,
            NoiseConfig,
            DeploymentConfig,
            OfferConfig,
            LatencyModel,
            CurationConfig,
            SamplingConfig,
            IspOverride,
        )
    }


def _encode_value(value: Any) -> Any:
    """Recursively encode a config value into JSON-safe data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _wire_classes():
            raise ConfigurationError(
                f"{name} is not a wire-serializable configuration class"
            )
        return {
            "__kind__": name,
            "fields": {
                f.name: _encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (tuple, list)):
        return [_encode_value(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ConfigurationError(
        f"cannot serialize configuration value of type {type(value).__name__}"
    )


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value` (JSON lists become tuples)."""
    if isinstance(value, Mapping):
        try:
            cls = _wire_classes()[value["__kind__"]]
            fields = value["fields"]
        except KeyError as exc:
            raise ConfigurationError(f"malformed config wire value: {exc}") from None
        return cls(**{key: _decode_value(item) for key, item in fields.items()})
    if isinstance(value, list):
        return tuple(_decode_value(item) for item in value)
    return value


def spec_to_wire(spec: ShardSpec) -> dict:
    """Serialize a spec for the RPC wire (drops the local-only ``tasks``)."""
    return {
        "version": SPEC_WIRE_VERSION,
        "city": spec.city,
        "isp": spec.isp,
        "start": spec.start,
        "stop": spec.stop,
        "config_digest": spec.config_digest,
        "world": _encode_value(spec.world),
        "config": _encode_value(spec.config),
    }


def spec_from_wire(wire: Mapping) -> ShardSpec:
    """Rehydrate a spec serialized by :func:`spec_to_wire`."""
    if not isinstance(wire, Mapping):
        raise ConfigurationError(f"spec wire payload must be a mapping, not {type(wire).__name__}")
    version = wire.get("version")
    if version != SPEC_WIRE_VERSION:
        raise ConfigurationError(
            f"spec wire version {version!r} does not match this worker's "
            f"{SPEC_WIRE_VERSION} (coordinator and workers must run the "
            "same code)"
        )
    try:
        return ShardSpec(
            world=_decode_value(wire["world"]),
            city=str(wire["city"]),
            isp=str(wire["isp"]),
            config=_decode_value(wire["config"]),
            start=int(wire["start"]),
            stop=None if wire.get("stop") is None else int(wire["stop"]),
            config_digest=str(wire.get("config_digest", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed shard spec: {exc}") from None


# ----------------------------------------------------------------------
# Rehydration memos
# ----------------------------------------------------------------------
# City ground truth is a pure (and expensive) function of (world config,
# city).  The coordinator pre-seeds this memo with its already-built
# cities before dispatching to a local backend (fork-started process
# workers inherit the seeded dict; threads share it outright), and a
# remote worker fills it on first touch.  Guarded by a lock because a
# worker serves concurrent RPC connections from one process.
_CITY_WORLD_MEMO: "dict[tuple[WorldConfig, str], CityWorld]" = {}
_CITY_WORLD_LOCK = threading.Lock()
# Per-key build guards so two concurrent requests for the same city build
# it once, not twice.
_CITY_WORLD_BUILDING: "dict[tuple[WorldConfig, str], threading.Event]" = {}

# The canonical task sample of one whole (city, ISP) shard, keyed by
# everything the sample is a function of: world config, coordinates, and
# the *sampling* knobs (two specs may share coordinates but sample
# differently).  Chunked specs of the same shard slice this instead of
# re-sampling the city per chunk.  Bounded: a worker cycles through a
# handful of shards at a time.
_TASKS_MEMO: "OrderedDict[tuple, tuple[NoisyAddress, ...]]" = OrderedDict()
_TASKS_MEMO_MAX = 32
_TASKS_LOCK = threading.Lock()


def seed_city_worlds(
    worlds: "Mapping[tuple[WorldConfig, str], CityWorld]",
) -> "list[tuple[WorldConfig, str]]":
    """Pre-seed the city memo with already-built cities.

    Returns the keys that were actually inserted (not already present),
    so the caller can release exactly those afterwards.
    """
    seeded: "list[tuple[WorldConfig, str]]" = []
    with _CITY_WORLD_LOCK:
        for key, city_world in worlds.items():
            if key not in _CITY_WORLD_MEMO:
                _CITY_WORLD_MEMO[key] = city_world
                seeded.append(key)
    return seeded


def release_city_worlds(keys: "Iterable[tuple[WorldConfig, str]]") -> None:
    """Drop previously seeded cities from the memo."""
    with _CITY_WORLD_LOCK:
        for key in keys:
            _CITY_WORLD_MEMO.pop(key, None)


def _city_world_for(world_config: "WorldConfig", city: str) -> "CityWorld":
    from ..world import build_city_world

    key = (world_config, city)
    while True:
        with _CITY_WORLD_LOCK:
            built = _CITY_WORLD_MEMO.get(key)
            if built is not None:
                return built
            pending = _CITY_WORLD_BUILDING.get(key)
            if pending is None:
                pending = threading.Event()
                _CITY_WORLD_BUILDING[key] = pending
                building = True
            else:
                building = False
        if not building:
            # Another thread is building this city; wait and re-check.
            pending.wait()
            continue
        try:
            built = build_city_world(world_config, city)
            with _CITY_WORLD_LOCK:
                _CITY_WORLD_MEMO[key] = built
            return built
        finally:
            with _CITY_WORLD_LOCK:
                _CITY_WORLD_BUILDING.pop(key, None)
            pending.set()


def full_shard_tasks(spec: ShardSpec) -> "tuple[NoisyAddress, ...]":
    """The whole shard's canonical task sample (ignores the chunk span)."""
    from ..dataset.curation import _shard_tasks

    key = (spec.world, spec.city, spec.isp, spec.config.sampling)
    with _TASKS_LOCK:
        tasks = _TASKS_MEMO.get(key)
        if tasks is not None:
            _TASKS_MEMO.move_to_end(key)
            return tasks
    city_world = _city_world_for(spec.world, spec.city)
    tasks = tuple(
        _shard_tasks(city_world, spec.isp, spec.config.sampling, spec.world.seed)
    )
    with _TASKS_LOCK:
        _TASKS_MEMO[key] = tasks
        _TASKS_MEMO.move_to_end(key)
        while len(_TASKS_MEMO) > _TASKS_MEMO_MAX:
            _TASKS_MEMO.popitem(last=False)
    return tasks


def spec_tasks(spec: ShardSpec) -> "tuple[NoisyAddress, ...]":
    """The task span this spec replays (pre-sliced or re-derived)."""
    if spec.tasks is not None:
        return spec.tasks
    return full_shard_tasks(spec)[spec.start : spec.stop]


def spec_cache_keys(
    spec: ShardSpec, tasks: "Sequence[NoisyAddress]"
) -> tuple[str, ...]:
    """Content-addressed cache keys of a spec's task span.

    Byte-for-byte the keys the coordinator's pipeline computes for the
    same span — both sides go through
    :func:`repro.exec.cache.shard_cache_keys` — so a worker-side store
    entry is addressable by the coordinator and vice versa.
    """
    from .cache import shard_cache_keys

    return shard_cache_keys(
        spec.isp,
        tasks,
        spec.world.seed,
        spec.world.scale,
        spec.config_digest,
    )


def run_shard_spec(
    spec: ShardSpec,
) -> "tuple[tuple[AddressObservation, ...], float]":
    """Execute one dispatch unit: the single entry point for every backend.

    Rehydrates the spec's city (memoized per process), resolves its task
    span, and replays the span against fresh per-shard server state.
    Returns ``(observations, wall_seconds)``; the wall time is measured
    here — inside whatever process runs the spec — so chunk costs sum to
    the shard's serial replay cost on every backend, local or remote.
    Task preparation stays outside the timed region, matching the
    pre-sampled fast path.
    """
    from ..dataset.curation import _shard_observations

    city_world = _city_world_for(spec.world, spec.city)
    tasks = list(spec_tasks(spec))
    started = time.monotonic()
    observations = _shard_observations(
        spec.world, city_world, spec.isp, spec.config, tasks=tasks
    )
    return observations, time.monotonic() - started
