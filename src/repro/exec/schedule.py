"""Straggler-aware shard scheduling: cost model, LPT order, chunking.

The curation pipeline dispatches (city, ISP) shards through an executor.
Shard costs are wildly uneven — Spectrum's virtual query medians run ~2.3x
Frontier's, and its deployments cover several times as many sampled
addresses — so dispatching shards in enumeration order lets one slow shard
land late on a busy pool and serialize the tail of the run.  The paper's
Section 4.1 scaling result (flat per-query response times while wall clock
falls with fleet size) only holds when every container stays busy to the
end; this module restores that property for our shard fleet:

* :class:`ShardCostModel` prices each shard, preferring the **observed**
  wall time recorded in a :class:`~repro.exec.store.DiskShardStore`
  manifest by a previous run (the store doubles as a cost model) and
  falling back to a **static estimate** — effective politeness times task
  count, the dominant term of a shard's virtual-time budget.
* :func:`lpt_order` sorts dispatch units longest-processing-time-first,
  the classic 4/3-approximation for makespan on identical machines.
* :func:`chunk_spans` slices an oversized shard's task list into
  deterministic, near-equal contiguous spans, so even a single giant
  (city, ISP) pair spreads across the pool.  Because every task's
  stochastic draws are content-keyed (see
  :meth:`repro.net.transport.InProcessTransport.begin_task`), a chunk
  replays exactly the observations the whole-shard run would have
  produced, and the canonical-order merge is byte-identical to a serial,
  unchunked run.

All scheduling decisions are pure functions of configuration and recorded
costs: the same inputs produce the same dispatch order on every backend,
and the merged dataset never depends on that order at all.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spec import ShardSpec
    from .store import DiskShardStore

__all__ = [
    "SCHEDULE_MODES",
    "ShardCost",
    "ShardCostModel",
    "calibrate_costs",
    "chunk_spans",
    "default_chunk_tasks",
    "default_schedule",
    "lpt_order",
    "parse_chunk_tasks",
    "resolve_chunk_tasks",
]

#: Dispatch-order modes: ``"lpt"`` (longest processing time first, the
#: default) and ``"fifo"`` (enumeration order — PR 3 behavior).
SCHEDULE_MODES: tuple[str, ...] = ("lpt", "fifo")

#: Environment variable selecting the dispatch-order mode.
SCHEDULE_ENV = "REPRO_SCHEDULE"

#: Environment variable for the sub-shard chunk cap (an integer task
#: count, or ``auto`` to size chunks from the executor width).
CHUNK_TASKS_ENV = "REPRO_CHUNK_TASKS"

#: ``auto`` chunking never makes a chunk smaller than this: below ~a dozen
#: tasks the per-chunk setup (fresh transport, BAT application, address
#: index) outweighs the packing benefit.
MIN_AUTO_CHUNK_TASKS = 12


def default_schedule() -> str:
    """Dispatch mode from ``REPRO_SCHEDULE`` (``lpt`` when unset)."""
    return os.environ.get(SCHEDULE_ENV, "").strip() or "lpt"


def parse_chunk_tasks(raw: str) -> "int | str":
    """Parse a chunk-cap spec: an integer task count or ``auto``.

    The one parser behind both ``REPRO_CHUNK_TASKS`` and the CLIs'
    ``--chunk-tasks`` flag, so the two knobs can never drift apart.
    """
    if raw.lower() == "auto":
        return "auto"
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"chunk-tasks must be an integer or 'auto', not {raw!r}"
        ) from None


def default_chunk_tasks() -> "int | str | None":
    """Chunk cap from ``REPRO_CHUNK_TASKS`` (None when unset).

    Accepts an integer task count or the string ``auto``.
    """
    raw = os.environ.get(CHUNK_TASKS_ENV, "").strip()
    if not raw:
        return None
    return parse_chunk_tasks(raw)


@dataclass(frozen=True)
class ShardCost:
    """The scheduler's price for one (city, ISP) shard.

    Attributes:
        seconds: Predicted serial wall time (virtual or real — only the
            relative order matters to LPT).
        task_count: Number of sampled addresses in the shard.
        source: ``"observed"`` when read from a store manifest,
            ``"estimated"`` for the static fallback.
    """

    seconds: float
    task_count: int
    source: str


class ShardCostModel:
    """Prices shards from recorded observations, estimates otherwise.

    Args:
        store: Optional :class:`~repro.exec.store.DiskShardStore` whose
            manifest carries cost rows recorded by previous runs.  An
            observation is trusted only while its task count still matches
            the shard's current sample (a scale/sampling change re-prices
            from the estimate).
    """

    def __init__(self, store: "DiskShardStore | None" = None) -> None:
        self._store = store

    def cost(
        self,
        city: str,
        isp: str,
        task_count: int,
        politeness_seconds: float,
        config_digest: str = "",
        pacing_time_scale: float = 0.0,
    ) -> ShardCost:
        """Price one shard (observed wall time, else the static estimate).

        An observation is trusted only while its task count, its config
        digest (when the caller has one), *and* its pacing regime still
        match: a cost recorded under different knobs — politeness, fleet
        size — or at CPU speed instead of paced wall time prices a
        different workload, and falls back to the estimate instead of
        silently mis-ordering dispatch.  (Pacing is deliberately absent
        from the cache digest — it never changes a byte — which is why
        the cost record carries it separately.)
        """
        if self._store is not None:
            record = self._store.cost_for(city, isp)
            if (
                record is not None
                and record.task_count == task_count
                and record.wall_seconds > 0.0
                and (not config_digest
                     or record.config_digest == config_digest)
                and record.pacing_time_scale == float(pacing_time_scale)
            ):
                return ShardCost(
                    seconds=record.wall_seconds,
                    task_count=task_count,
                    source="observed",
                )
        return ShardCost(
            seconds=self.estimate(task_count, politeness_seconds),
            task_count=task_count,
            source="estimated",
        )

    def spec_cost(self, spec: "ShardSpec", task_count: int | None = None) -> ShardCost:
        """Price a :class:`~repro.exec.spec.ShardSpec` dispatch unit.

        Since the spec refactor the scheduler prices *specs*, not live
        shard plans: everything the cost model needs — coordinates,
        effective politeness, pacing regime, config digest — is already
        pure data on the spec.  ``task_count`` may be supplied when the
        caller knows the span size without materializing tasks; otherwise
        it is read off the spec's span (which must then be concrete).
        """
        if task_count is None:
            if spec.tasks is not None:
                task_count = len(spec.tasks)
            elif spec.stop is not None:
                task_count = max(0, spec.stop - spec.start)
            else:
                raise ConfigurationError(
                    "cannot price an open-ended spec span without task_count"
                )
        return self.cost(
            spec.city,
            spec.isp,
            task_count,
            spec.config.effective_politeness(spec.isp),
            config_digest=spec.config_digest,
            pacing_time_scale=spec.config.pacing_time_scale,
        )

    @staticmethod
    def estimate(task_count: int, politeness_seconds: float) -> float:
        """Static shard-cost estimate: effective politeness x task count.

        Politeness is the per-query pause every worker honors, so it is a
        lower bound on a shard's per-task virtual budget; the ``+ 1``
        keeps zero-politeness configurations ordered by task count rather
        than collapsing every shard to cost zero.
        """
        return float(task_count) * (float(politeness_seconds) + 1.0)


def calibrate_costs(
    costs: Sequence[ShardCost], politeness: Sequence[float]
) -> list[float]:
    """Comparable prices for a mixed observed/estimated shard set.

    Observed costs are *real* wall seconds; the static estimate is in
    *virtual* seconds (politeness x tasks) — typically orders of
    magnitude larger on the unpaced in-process transport.  Sorting the
    two units together would rank every estimated shard above every
    observed one, no matter how small, re-creating the straggler tail
    for exactly the shards the cost model knows most about.  This rescales
    the estimated prices into observed units using the shards that have
    both numbers: ``factor = observed seconds / what the estimator would
    have said for those same shards``.  All-observed or all-estimated
    sets pass through unchanged, as do degenerate (zero) calibrations.
    """
    if len(costs) != len(politeness):
        raise ConfigurationError(
            f"{len(costs)} costs for {len(politeness)} politeness values"
        )
    prices = [float(cost.seconds) for cost in costs]
    observed = [i for i, cost in enumerate(costs) if cost.source == "observed"]
    estimated = [i for i, cost in enumerate(costs) if cost.source != "observed"]
    if not observed or not estimated:
        return prices
    observed_sum = sum(prices[i] for i in observed)
    estimate_sum = sum(
        ShardCostModel.estimate(costs[i].task_count, politeness[i])
        for i in observed
    )
    if observed_sum <= 0.0 or estimate_sum <= 0.0:
        return prices
    factor = observed_sum / estimate_sum
    for i in estimated:
        prices[i] *= factor
    return prices


def lpt_order(
    costs: Sequence[float], tie_keys: Sequence[object] | None = None
) -> list[int]:
    """Indices of ``costs`` sorted longest-processing-time-first.

    Ties break on ``tie_keys`` (the unit's (city, ISP, span) coordinates
    in the pipeline) and then on the original index, so the dispatch
    order is deterministic across runs, platforms and backends.
    """
    if tie_keys is not None and len(tie_keys) != len(costs):
        raise ConfigurationError(
            f"{len(tie_keys)} tie keys for {len(costs)} costs"
        )

    def sort_key(index: int):
        tie = tie_keys[index] if tie_keys is not None else ()
        return (-float(costs[index]), tie, index)

    return sorted(range(len(costs)), key=sort_key)


def resolve_chunk_tasks(
    spec: "int | str | None",
    total_tasks: int,
    width: int,
) -> int | None:
    """Turn a chunk-cap spec into a concrete task count (or None).

    ``None`` disables chunking; an integer is used as-is (floored at one);
    ``"auto"`` targets roughly four dispatch units per executor slot —
    enough granularity that the final units land on an almost-drained pool
    — without ever dropping below :data:`MIN_AUTO_CHUNK_TASKS` tasks per
    chunk, where per-chunk setup would dominate.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        if spec.lower() != "auto":
            raise ConfigurationError(
                f"chunk_tasks must be an integer, 'auto' or None, not {spec!r}"
            )
        if width <= 1 or total_tasks <= 0:
            return None  # a serial pool gains nothing from chunking
        target_units = 4 * width
        cap = max(MIN_AUTO_CHUNK_TASKS, -(-total_tasks // target_units))
        return cap
    if spec < 1:
        raise ConfigurationError("chunk_tasks must be >= 1")
    return int(spec)


def chunk_spans(n_tasks: int, chunk_tasks: int | None) -> tuple[tuple[int, int], ...]:
    """Deterministic near-equal contiguous spans covering ``n_tasks``.

    Returns ``(start, stop)`` slice bounds.  With ``chunk_tasks=None`` (or
    a cap the shard already fits in) the shard stays whole.  Otherwise the
    shard splits into ``ceil(n / cap)`` spans whose sizes differ by at
    most one — balanced pieces pack better than a run of full chunks plus
    one remainder sliver.

    >>> chunk_spans(10, None)
    ((0, 10),)
    >>> chunk_spans(10, 4)
    ((0, 4), (4, 7), (7, 10))
    """
    if n_tasks <= 0:
        return ((0, 0),) if n_tasks == 0 else ()
    if chunk_tasks is None or n_tasks <= chunk_tasks:
        return ((0, n_tasks),)
    n_chunks = -(-n_tasks // chunk_tasks)  # ceil division
    base, extra = divmod(n_tasks, n_chunks)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(n_chunks):
        stop = start + base + (1 if index < extra else 0)
        spans.append((start, stop))
        start = stop
    return tuple(spans)
