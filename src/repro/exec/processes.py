"""Process-pool backend.

Each work item runs in a child process, sidestepping the GIL for CPU-bound
shard work on multi-core hosts.  The contract is the same as every other
backend — results in item order — but two extra constraints apply:

* the work function and its items must be picklable (top-level functions
  and plain dataclasses; no closures over live transports);
* per-item overhead includes pickling and, for curation shards, rebuilding
  the shard's city ground truth inside the child (memoized per process, so
  shards of the same city amortize it).

On Linux the pool forks by default, so children inherit already-imported
modules and start in milliseconds.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..errors import ConfigurationError
from .base import Executor, default_max_workers

__all__ = ["ProcessPoolBackend"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


class ProcessPoolBackend(Executor):
    """Order-preserving map over a :class:`ProcessPoolExecutor`."""

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.max_workers = max_workers or default_max_workers()
        self.start_method = start_method

    def _context(self) -> multiprocessing.context.BaseContext:
        if self.start_method is None:
            return multiprocessing.get_context()
        return multiprocessing.get_context(self.start_method)

    def map(
        self,
        fn: Callable[[_ItemT], _ResultT],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        if not items:
            return []
        # A pool wider than the work list would only spawn idle children.
        width = min(self.max_workers, len(items))
        with ProcessPoolExecutor(
            max_workers=width, mp_context=self._context()
        ) as pool:
            return list(pool.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessPoolBackend(max_workers={self.max_workers})"
