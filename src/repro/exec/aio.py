"""Asyncio executor backend: a semaphore-bounded coroutine fleet.

The thread backend buys I/O overlap by paying one OS thread per in-flight
work item; the async backend buys the same overlap with coroutines on a
single event loop, so its concurrency bound is a semaphore count rather
than a thread budget.  On the real-TCP query path — where the work is
``await``-able page fetches over :class:`~repro.net.aio.AsyncTcpTransport`
keep-alive connections — one loop replaces hundreds of threads and the
per-request setup cost (thread switch + TCP handshake) disappears.

Behind the same :class:`~repro.exec.base.Executor` protocol as every
other backend:

* coroutine work functions run concurrently on one event loop, bounded by
  ``max_concurrency`` in-flight items, results in item order;
* plain (synchronous) work functions degrade to an in-order loop — the
  curation pipeline hands the async backend coroutine shard runners, but
  contract callers with sync functions still get correct results.

Exceptions propagate like the serial reference: the first failing item in
**item order** raises; later results are discarded.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Awaitable, Callable, Sequence, TypeVar

from ..errors import ConfigurationError
from .base import Executor

__all__ = ["AsyncExecutor", "DEFAULT_ASYNC_CONCURRENCY"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Default in-flight bound.  Coroutines are cheap — this is a politeness /
#: memory bound, not a core count, so it sits far above ``os.cpu_count()``.
DEFAULT_ASYNC_CONCURRENCY = 64


class AsyncExecutor(Executor):
    """Order-preserving map over one asyncio event loop.

    Args:
        max_workers: Bound on concurrently *in-flight* coroutines (the
            semaphore width).  Named ``max_workers`` for registry symmetry
            with the pool backends; defaults to
            :data:`DEFAULT_ASYNC_CONCURRENCY`.
    """

    name = "async"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.max_concurrency = max_workers or DEFAULT_ASYNC_CONCURRENCY

    @property
    def max_workers(self) -> int:
        """Registry-symmetric alias for the concurrency bound."""
        return self.max_concurrency

    def map(
        self,
        fn: Callable[[_ItemT], _ResultT | Awaitable[_ResultT]],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        if not items:
            return []
        if not inspect.iscoroutinefunction(fn):
            # Synchronous work gains nothing from a loop; run it like the
            # serial reference so results (and exceptions) are identical.
            return [fn(item) for item in items]
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(self._gather(fn, items))
        raise ConfigurationError(
            "AsyncExecutor.map() cannot be called from inside a running "
            "event loop; await the coroutines directly instead"
        )

    async def _gather(
        self,
        fn: Callable[[_ItemT], Awaitable[_ResultT]],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        gate = asyncio.Semaphore(self.max_concurrency)

        async def bounded(item: _ItemT) -> _ResultT:
            async with gate:
                return await fn(item)

        outcomes = await asyncio.gather(
            *(bounded(item) for item in items), return_exceptions=True
        )
        # Re-raise the first failure in *item* order (gather alone would
        # surface whichever exception completed first on the loop).
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(outcomes)

    def map_specs(self, specs):
        """Run shard specs as semaphore-bounded coroutines on one loop.

        Spec replay on the in-process transport is CPU-bound, so this is
        about protocol coverage and determinism (the parity suite), not
        speed — but wrapping the runner in a coroutine keeps the specs on
        the same bounded-gather machinery as every other async workload.
        """
        from .spec import run_shard_spec

        async def run(spec):
            return run_shard_spec(spec)

        return self.map(run, list(specs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AsyncExecutor(max_concurrency={self.max_concurrency})"
