"""Content-addressed query-result cache for the curation pipeline.

Curation cost is dominated by replaying BQT queries, and most callers —
the test suite, ablation sweeps, the example scripts — re-curate worlds
that have not changed.  The cache remembers finished observations keyed by
the content that determines them:

``(isp, normalized address, world seed, scale)`` plus a digest of every
other input that shapes the result (sampling parameters, fleet size,
politeness, salt, latency model, ablation knobs).  Any change to any of
those inputs changes the key, so stale entries are never returned — there
is no explicit invalidation API because invalidation is the key.

Reuse is **shard-atomic**: a (city, ISP) shard is served from cache only
when *every* address in the shard is present.  Within a shard, query
outcomes share transport and server state (RTT draws, render-delay draws,
rate-limit windows), so replaying a partial shard against fresh state
would produce different timings than the cached remainder — mixing the two
would break the byte-identical-replay guarantee.  All-or-nothing reuse
keeps every curated dataset exactly equal to a from-scratch run.

The cache is **two-tier**: the in-memory entry table serves the running
process, and an optional :class:`~repro.exec.store.DiskShardStore` makes
results survive across processes — a fresh CI run or a second experiment
invocation loads finished shards from disk instead of replaying a single
BQT query.  Disk hits are promoted into the memory tier on first touch.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..addresses.normalize import canonical_key
from ..errors import ConfigurationError
from .store import DiskShardStore, ShardMeta

if TYPE_CHECKING:  # runtime-lazy: repro.dataset imports this module back
    from ..addresses.noise import NoisyAddress
    from ..dataset.records import AddressObservation

__all__ = [
    "CacheStats",
    "QueryResultCache",
    "address_cache_key",
    "shard_cache_keys",
]


def address_cache_key(
    isp: str,
    street_line: str,
    zip_code: str,
    world_seed: int,
    scale: float,
    context_digest: str = "",
) -> str:
    """Content-addressed key for one (ISP, address) query outcome.

    The address is normalized first (case, whitespace, suffix
    abbreviations), so the same physical address always maps to the same
    key regardless of the feed's noisy spelling of the moment.

    >>> a = address_cache_key("cox", "12 Oak Avenue", "70112", 42, 0.05)
    >>> a == address_cache_key("cox", "12 OAK AVE", "70112", 42, 0.05)
    True
    >>> a != address_cache_key("cox", "12 Oak Avenue", "70112", 43, 0.05)
    True
    """
    hasher = hashlib.sha256()
    for part in (
        isp,
        canonical_key(street_line, zip_code),
        str(int(world_seed)),
        repr(float(scale)),
        context_digest,
    ):
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x1f")
    return hasher.hexdigest()


def shard_cache_keys(
    isp: str,
    tasks: "Sequence[NoisyAddress]",
    world_seed: int,
    scale: float,
    config_digest: str,
) -> tuple[str, ...]:
    """Content-addressed keys for one shard span's task list, in order.

    Keys address the *canonical* (truth) address: distinct feed entries
    can share a noisy public spelling, but never a canonical one, and for
    a fixed (seed, scale, config) the noisy spelling — hence the query
    outcome — is a pure function of the truth.  This is the one place the
    key stream is derived; the coordinator pipeline and remote workers
    both call it, which is what makes their store entries mutually
    addressable.
    """
    return tuple(
        address_cache_key(
            isp,
            entry.truth.street_line(),
            entry.truth.zip_code,
            world_seed,
            scale,
            context_digest=config_digest,
        )
        for entry in tasks
    )


@dataclass
class CacheStats:
    """Running hit/miss counters (address-level granularity).

    ``shard_hits`` counts every served shard regardless of tier;
    ``disk_shard_hits`` counts the subset that came off disk (and was
    promoted into memory).  ``disk_stores`` counts shards persisted.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    shard_hits: int = 0
    shard_misses: int = 0
    disk_shard_hits: int = 0
    disk_stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class QueryResultCache:
    """Two-tier store of finished address observations.

    One instance can back many pipelines (the experiment context shares a
    process-wide cache across scales and seeds — distinct configurations
    occupy distinct keys).  Thread-safe: shard lookups and stores take an
    internal lock, so a thread-backed pipeline can share an instance.

    Args:
        store: Optional on-disk tier.  When set, shard stores are
            persisted and memory misses fall through to disk; a disk hit
            is promoted into the memory tier so the next lookup is free.
    """

    def __init__(self, store: DiskShardStore | None = None) -> None:
        self._entries: dict[str, AddressObservation] = {}
        self._lock = threading.Lock()
        self.store = store
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> AddressObservation | None:
        """Single-key peek (does not touch the hit/miss counters)."""
        with self._lock:
            return self._entries.get(key)

    def lookup_shard(
        self, keys: Sequence[str]
    ) -> tuple[AddressObservation, ...] | None:
        """Return the full shard's observations, or None on any miss.

        The memory tier is checked first; on a memory miss the disk tier
        (when attached) is consulted, and a disk hit is promoted into
        memory.  Accounting is per address: a served shard counts
        ``len(keys)`` hits regardless of tier; a miss counts ``len(keys)``
        misses (the whole shard will be re-queried).  An empty key set is
        never a hit — a zero-task shard goes to the executor, not the
        cache, so the counters stay honest.
        """
        if not keys:
            return None
        with self._lock:
            if all(key in self._entries for key in keys):
                self.stats.hits += len(keys)
                self.stats.shard_hits += 1
                return tuple(self._entries[key] for key in keys)
        if self.store is not None:
            observations = self.store.get(keys)
            if observations is not None and len(observations) == len(keys):
                with self._lock:
                    for key, observation in zip(keys, observations):
                        self._entries[key] = observation
                    self.stats.hits += len(keys)
                    self.stats.shard_hits += 1
                    self.stats.disk_shard_hits += 1
                return observations
        with self._lock:
            self.stats.misses += len(keys)
            self.stats.shard_misses += 1
        return None

    def store_shard(
        self,
        keys: Sequence[str],
        observations: Iterable[AddressObservation],
        meta: ShardMeta | None = None,
    ) -> None:
        """Record a freshly executed shard, one entry per address.

        ``meta`` labels the shard in the disk manifest (city, ISP, seed,
        scale, config digest); it is ignored by the memory tier.
        """
        observations = tuple(observations)
        if len(keys) != len(observations):
            raise ConfigurationError(
                f"{len(keys)} keys for {len(observations)} observations"
            )
        with self._lock:
            for key, observation in zip(keys, observations):
                self._entries[key] = observation
                self.stats.stores += 1
        if self.store is not None and keys:
            self.store.put(keys, observations, meta=meta)
            with self._lock:
                self.stats.disk_stores += 1

    def clear(self, disk: bool = False) -> None:
        """Drop every memory entry (counters are preserved).

        ``disk=True`` also purges the on-disk tier, when one is attached.
        """
        with self._lock:
            self._entries.clear()
        if disk and self.store is not None:
            self.store.purge()
