"""Content-addressed on-disk shard store: the cache tier that survives.

:class:`~repro.exec.cache.QueryResultCache` remembers finished (city, ISP)
shards in process memory; this module gives it a second tier that persists
across processes, CI runs, and experiment invocations.  The layout under
the store root is::

    <root>/
        manifest.json               # entry metadata + LRU clock
        objects/<dd>/<digest>.json  # one versioned file per shard

Every shard is addressed by the SHA-256 digest of its ordered
address-level cache keys — each of which already encodes (ISP, canonical
address, world seed, scale, config digest) — so the content *is* the
address: any configuration change produces a different digest and the old
entry is simply never looked up again.  The manifest records the
human-readable side of each key (city, ISP, seed, scale, config digest)
plus size and last-access order for eviction.

Durability rules:

* **Atomic shard writes.**  Entries are written to a temp file in the
  object directory and ``os.replace``-d into place, so a concurrent reader
  (or a crash mid-write) never observes a partial shard.  Two processes
  racing to write the same digest write byte-identical content — the
  replay is deterministic — so last-writer-wins is harmless.
* **Versioned serialization.**  Every entry embeds
  :data:`STORE_VERSION`; a version mismatch is a cache miss, never a
  crash — and the mismatched file is left on disk untouched, since it may
  be a *newer* format written by another code version sharing the root.
  Corrupted or truncated entries are deleted on read and reported as
  misses.
* **LRU eviction under a byte cap.**  The manifest keeps a monotonic
  access clock; when ``max_bytes`` is set, the least-recently-used entries
  are evicted until the store fits.
* **Manifest is advisory.**  Object files are the source of truth: an
  entry present on disk but missing from the manifest (a cross-process
  manifest race, a deleted manifest) is adopted on first read.
* **Cross-process manifest writes are serialized and merged.**  Several
  processes share one store root routinely now — a coordinator plus its
  loopback workers, or CI's warm-cache passes — and each keeps its own
  in-memory manifest copy.  Every save takes an advisory ``flock`` on
  ``<root>/manifest.lock`` and *merges* the on-disk manifest into the
  outgoing one (rows for object files that still exist, cost rows for
  unknown shards, the larger LRU clock) before the atomic replace, so a
  last-writer-wins race can no longer drop another process's rows.

The manifest additionally doubles as the curation scheduler's **cost
model**: every executed shard records its observed wall time and task
count under its (city, ISP) coordinates (see :meth:`DiskShardStore.
record_cost`), and the next run orders shard dispatch
longest-processing-time-first from those observations
(:mod:`repro.exec.schedule`).  Cost rows are advisory like the rest of
the manifest — a missing or stale row degrades to the static estimate,
never to an error.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

try:  # POSIX advisory file locking; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # runtime-lazy: repro.dataset imports repro.exec back
    from ..dataset.records import AddressObservation

__all__ = [
    "STORE_VERSION",
    "ShardMeta",
    "ShardCostRecord",
    "StoreEntry",
    "DiskShardStore",
    "shard_digest",
    "default_cache_dir",
    "default_cache_max_bytes",
    "build_result_cache",
    "observation_to_dict",
    "observation_from_dict",
]

#: Serialization format version.  Bump on any change to the entry schema;
#: readers treat every other version as a miss.
STORE_VERSION = 1

#: Environment variable naming the on-disk cache root (CLI ``--cache-dir``
#: overrides it; unset means memory-only caching).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable capping the store size in bytes (optional).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"


def shard_digest(keys: Sequence[str]) -> str:
    """Content address of one shard: digest of its ordered address keys."""
    hasher = hashlib.sha256()
    for key in keys:
        hasher.update(key.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def default_cache_dir() -> Path | None:
    """Store root from ``REPRO_CACHE_DIR`` (None when unset/empty)."""
    raw = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(raw) if raw else None


def default_cache_max_bytes() -> int | None:
    """Byte cap from ``REPRO_CACHE_MAX_BYTES`` (None when unset/empty)."""
    raw = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
    return int(raw) if raw else None


@dataclass(frozen=True)
class ShardMeta:
    """Human-readable half of a shard's identity, kept in the manifest.

    The digest alone suffices for correctness; the metadata exists so a
    person (or the CI artifact step) can read the manifest and see *which*
    (city, ISP, seed, scale, config) each opaque entry belongs to.
    """

    city: str = ""
    isp: str = ""
    seed: int = 0
    scale: float = 0.0
    config_digest: str = ""


@dataclass(frozen=True)
class StoreEntry:
    """One manifest row: shard identity plus size and LRU position."""

    digest: str
    meta: ShardMeta
    n_observations: int
    n_bytes: int
    access: int


@dataclass(frozen=True)
class ShardCostRecord:
    """One observed shard execution, persisted in the manifest.

    ``wall_seconds`` is the shard's serial replay cost — the sum of its
    dispatch units' wall times — so it stays comparable whether the shard
    ran whole or chunked, on any backend.  ``pacing_time_scale`` records
    the pacing regime the observation was made under: pacing is excluded
    from the shard *cache* digest (it never changes a byte), but a
    CPU-speed cost cannot price a paced run, so the cost model requires
    the regime to match too.
    """

    city: str
    isp: str
    config_digest: str
    wall_seconds: float
    task_count: int
    pacing_time_scale: float = 0.0


def observation_to_dict(obs: "AddressObservation") -> dict:
    """One observation as the JSON row the store entry format carries.

    Public because the entry format doubles as the coordinator/worker
    wire format: remote workers serialize freshly executed observations
    with this and the coordinator rehydrates them with
    :func:`observation_from_dict` — the same bytes either way as a
    disk-store round trip.
    """
    return {
        "address_id": obs.address_id,
        "city": obs.city,
        "block_group": obs.block_group,
        "isp": obs.isp,
        "status": obs.status,
        "elapsed_seconds": obs.elapsed_seconds,
        "plans": [
            {
                "name": p.name,
                "down": p.download_mbps,
                "up": p.upload_mbps,
                "price": p.monthly_price,
            }
            for p in obs.plans
        ],
    }


def observation_from_dict(row: dict) -> "AddressObservation":
    from ..dataset.records import AddressObservation, PlanObservation

    return AddressObservation(
        address_id=row["address_id"],
        city=row["city"],
        block_group=row["block_group"],
        isp=row["isp"],
        status=row["status"],
        plans=tuple(
            PlanObservation(
                name=p["name"],
                download_mbps=float(p["down"]),
                upload_mbps=float(p["up"]),
                monthly_price=float(p["price"]),
            )
            for p in row["plans"]
        ),
        elapsed_seconds=float(row["elapsed_seconds"]),
    )


class DiskShardStore:
    """Content-addressed, LRU-evicting, crash-safe store of shard results.

    Thread-safe within a process (one internal lock) and safe to share a
    root across processes: writes are atomic renames, the manifest is
    advisory, and racing writers of the same digest produce identical
    bytes.

    Args:
        root: Store directory (created on first use).
        max_bytes: Evict least-recently-used entries once the sum of entry
            sizes exceeds this; None means unbounded.
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._objects = self.root / "objects"
        self._manifest_path = self.root / "manifest.json"
        self._lock_path = self.root / "manifest.lock"
        self._manifest = self._load_manifest()
        self._tmp_counter = 0
        self._dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._manifest["entries"])

    def total_bytes(self) -> int:
        """Sum of entry sizes currently tracked by the manifest."""
        with self._lock:
            return sum(e["n_bytes"] for e in self._manifest["entries"].values())

    def entries(self) -> tuple[StoreEntry, ...]:
        """Manifest rows, least-recently-used first."""
        with self._lock:
            rows = sorted(
                self._manifest["entries"].items(), key=lambda kv: kv[1]["access"]
            )
        return tuple(
            StoreEntry(
                digest=digest,
                meta=ShardMeta(
                    city=row["city"],
                    isp=row["isp"],
                    seed=row["seed"],
                    scale=row["scale"],
                    config_digest=row["config_digest"],
                ),
                n_observations=row["n_observations"],
                n_bytes=row["n_bytes"],
                access=row["access"],
            )
            for digest, row in rows
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(
        self, keys: Sequence[str]
    ) -> "tuple[AddressObservation, ...] | None":
        """Load a shard by its address keys; None on miss/corruption.

        A successful read bumps the entry's LRU clock (persisted lazily —
        on the next mutation — so a hit never pays a manifest write).
        Corrupted or malformed files are deleted and reported as misses;
        a file with a *different serialization version* is left on disk
        untouched — it may belong to another code version sharing the
        store root — and only reported as a miss.
        """
        if not keys:
            return None
        digest = shard_digest(keys)
        path = self._object_path(digest)
        with self._lock:
            payload, corrupt = self._read_entry(path)
            if payload is None:
                if corrupt:
                    self._drop_entry(digest, path)
                elif not path.exists():
                    # Evicted/removed by another process: forget the row.
                    self._forget(digest)
                return None
            if payload.get("keys") != list(keys):
                # Same digest, different keys: tampered or hash-collided
                # content can never be served.
                self._drop_entry(digest, path)
                return None
            try:
                observations = tuple(
                    observation_from_dict(row) for row in payload["observations"]
                )
            except (KeyError, TypeError, ValueError):
                self._drop_entry(digest, path)
                return None
            self._touch(digest, payload, path)
        return observations

    def find_stale(
        self,
        city: str,
        isp: str,
        seed: int | None = None,
        scale: float | None = None,
    ) -> "tuple[tuple[AddressObservation, ...], ShardMeta] | None":
        """Stale-while-revalidate read: the freshest (city, ISP) entry
        *regardless of config digest*.

        The content-addressed :meth:`get` can only answer "do I have
        exactly this shard?"; the serving tier's pre-congestion policy
        also needs "do I have *any* prior curation of this shard?" — a
        byte-exact result of some earlier configuration is a better
        overload answer than a 503.  The manifest already records each
        entry's (city, ISP, seed, scale), so this scans it newest-access
        first, optionally pinning ``seed``/``scale`` (pass both to
        guarantee the stale payload covers the same address sample).
        Returns ``(observations, meta)`` — callers compare
        ``meta.config_digest`` against the current one to decide whether
        the answer is actually stale — or None when nothing matches.
        Corrupt candidates are dropped and the scan moves on.
        """
        with self._lock:
            candidates = sorted(
                (
                    (row["access"], digest)
                    for digest, row in self._manifest["entries"].items()
                    if row.get("city") == city
                    and row.get("isp") == isp
                    and (seed is None or row.get("seed") == seed)
                    and (scale is None or row.get("scale") == scale)
                ),
                reverse=True,
            )
            for _access, digest in candidates:
                path = self._object_path(digest)
                payload, corrupt = self._read_entry(path)
                if payload is None:
                    if corrupt:
                        self._drop_entry(digest, path)
                    continue
                try:
                    observations = tuple(
                        observation_from_dict(row)
                        for row in payload["observations"]
                    )
                except (KeyError, TypeError, ValueError):
                    self._drop_entry(digest, path)
                    continue
                meta_row = payload.get("meta") or {}
                meta = ShardMeta(
                    city=str(meta_row.get("city", city)),
                    isp=str(meta_row.get("isp", isp)),
                    seed=int(meta_row.get("seed", 0)),
                    scale=float(meta_row.get("scale", 0.0)),
                    config_digest=str(meta_row.get("config_digest", "")),
                )
                self._touch(digest, payload, path)
                return observations, meta
        return None

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(
        self,
        keys: Sequence[str],
        observations: "Iterable[AddressObservation]",
        meta: ShardMeta | None = None,
    ) -> str:
        """Persist one shard atomically; returns its digest.

        The entry is written next to its final location and renamed into
        place, so concurrent readers never see a partial file.  If the
        byte cap is exceeded afterwards, least-recently-used entries are
        evicted (the fresh entry is the most recent, so it survives unless
        it alone exceeds the cap).
        """
        keys = list(keys)
        digest = shard_digest(keys)
        meta = meta or ShardMeta()
        rows = [observation_to_dict(obs) for obs in observations]
        payload = {
            "version": STORE_VERSION,
            "digest": digest,
            "keys": keys,
            "meta": asdict(meta),
            "observations": rows,
        }
        blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        path = self._object_path(digest)
        with self._lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(path, blob)
            self._manifest["clock"] += 1
            self._manifest["entries"][digest] = {
                **asdict(meta),
                "n_observations": len(rows),
                "n_bytes": len(blob),
                "access": self._manifest["clock"],
            }
            self._evict_over_cap()
            self._save_manifest()
        return digest

    def purge(self) -> None:
        """Delete every entry (and cost record) and reset the manifest."""
        with self._lock:
            for digest in list(self._manifest["entries"]):
                self._unlink(self._object_path(digest))
            self._manifest = {
                "version": STORE_VERSION, "clock": 0, "entries": {}, "costs": {},
            }
            # An explicit purge must win: merging would resurrect rows
            # another process wrote for the objects just deleted.
            self._save_manifest(merge=False)

    # ------------------------------------------------------------------
    # Cost model (read by repro.exec.schedule)
    # ------------------------------------------------------------------
    def record_cost(self, record: ShardCostRecord) -> None:
        """Remember one shard's observed execution cost.

        Persisted lazily — on the next mutating operation or explicit
        :meth:`flush` — so recording every shard of a run costs one
        manifest write, not one per shard.  A cost lost to a crash only
        degrades the next run's dispatch order, never correctness.
        """
        with self._lock:
            self._manifest.setdefault("costs", {})[
                f"{record.city}\x1f{record.isp}"
            ] = {
                "config_digest": record.config_digest,
                "wall_seconds": round(float(record.wall_seconds), 6),
                "task_count": int(record.task_count),
                "pacing_time_scale": float(record.pacing_time_scale),
            }
            self._dirty = True

    def cost_for(self, city: str, isp: str) -> ShardCostRecord | None:
        """The recorded cost of one (city, ISP) shard, if any."""
        with self._lock:
            row = self._manifest.get("costs", {}).get(f"{city}\x1f{isp}")
        if not isinstance(row, dict):
            return None
        try:
            return ShardCostRecord(
                city=city,
                isp=isp,
                config_digest=str(row.get("config_digest", "")),
                wall_seconds=float(row["wall_seconds"]),
                task_count=int(row["task_count"]),
                pacing_time_scale=float(row.get("pacing_time_scale", 0.0)),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def cost_records(self) -> tuple[ShardCostRecord, ...]:
        """Every recorded shard cost, sorted by (city, ISP)."""
        with self._lock:
            keys = sorted(self._manifest.get("costs", {}))
        records = []
        for key in keys:
            city, _, isp = key.partition("\x1f")
            record = self.cost_for(city, isp)
            if record is not None:
                records.append(record)
        return tuple(records)

    # ------------------------------------------------------------------
    # Internals (caller holds the lock)
    # ------------------------------------------------------------------
    def _object_path(self, digest: str) -> Path:
        return self._objects / digest[:2] / f"{digest}.json"

    def _atomic_write(self, path: Path, blob: bytes) -> None:
        self._tmp_counter += 1
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{self._tmp_counter}.tmp"
        )
        try:
            with tmp.open("wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            self._unlink(tmp)

    def _read_entry(self, path: Path) -> tuple[dict | None, bool]:
        """Parse one entry file: ``(payload, corrupt)``.

        ``(None, False)`` is a clean miss (file absent, or a foreign
        serialization version that must be left alone); ``(None, True)``
        is a corrupt file the caller should delete.
        """
        try:
            raw = path.read_bytes()
        except OSError:
            return None, False
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            return None, True
        if not isinstance(payload, dict):
            return None, True
        if payload.get("version") != STORE_VERSION:
            return None, False
        if not isinstance(payload.get("observations"), list):
            return None, True
        return payload, False

    def _touch(self, digest: str, payload: dict, path: Path) -> None:
        # LRU bookkeeping only: recorded in memory and persisted on the
        # next mutating operation (put/evict/drop) or explicit flush(), so
        # a cache hit costs zero manifest writes.  A touch lost to a crash
        # only ages the entry in LRU order — never a correctness issue.
        entry = self._manifest["entries"].get(digest)
        if entry is None:
            # Adopted from disk: another process wrote it, or the manifest
            # was lost.  Reconstruct the row from the entry's embedded meta.
            meta = payload.get("meta") or {}
            entry = {
                **asdict(ShardMeta()),
                **{k: meta[k] for k in asdict(ShardMeta()) if k in meta},
                "n_observations": len(payload["observations"]),
                "n_bytes": self._file_size(path),
                "access": 0,
            }
            self._manifest["entries"][digest] = entry
        self._manifest["clock"] += 1
        entry["access"] = self._manifest["clock"]
        self._dirty = True

    def flush(self) -> None:
        """Persist any pending LRU touches to the manifest."""
        with self._lock:
            if self._dirty:
                self._save_manifest()

    def _forget(self, digest: str) -> None:
        if self._manifest["entries"].pop(digest, None) is not None:
            self._save_manifest()

    def _drop_entry(self, digest: str, path: Path) -> None:
        self._unlink(path)
        if self._manifest["entries"].pop(digest, None) is not None:
            self._save_manifest()

    def _evict_over_cap(self) -> None:
        if self.max_bytes is None:
            return
        entries = self._manifest["entries"]
        by_age = sorted(entries.items(), key=lambda kv: kv[1]["access"])
        total = sum(row["n_bytes"] for _, row in by_age)
        for digest, row in by_age:
            if total <= self.max_bytes:
                break
            self._unlink(self._object_path(digest))
            entries.pop(digest, None)
            total -= row["n_bytes"]

    def _load_manifest(self) -> dict:
        fresh = {"version": STORE_VERSION, "clock": 0, "entries": {}, "costs": {}}
        try:
            data = json.loads(self._manifest_path.read_bytes())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError, ValueError):
            return fresh
        if (
            not isinstance(data, dict)
            or data.get("version") != STORE_VERSION
            or not isinstance(data.get("entries"), dict)
            or not isinstance(data.get("clock"), int)
        ):
            return fresh
        if not isinstance(data.get("costs"), dict):
            # Manifests written before the cost model (or with a mangled
            # section) simply start with no observations.
            data["costs"] = {}
        return data

    @contextlib.contextmanager
    def _manifest_file_lock(self):
        """Advisory cross-process lock around manifest read-modify-write.

        A no-op where :mod:`fcntl` is unavailable (non-POSIX) — there the
        manifest degrades to the old last-writer-wins behavior, which is
        still *safe* (objects are the source of truth; lost rows are
        re-adopted on read), just lossier.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self._lock_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _merge_disk_manifest(self) -> None:
        """Fold another process's manifest rows into the outgoing save.

        Called under both locks, immediately before writing.  Adopts
        entry rows we do not carry whose object file still exists (a row
        for a deleted file would be forgotten again on first read
        anyway), cost rows for shards we have no fresher observation of,
        and the larger LRU clock — so concurrent writers sharing the
        root converge on the union instead of the last writer's view.
        """
        try:
            disk = json.loads(self._manifest_path.read_bytes())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError, ValueError):
            return
        if (
            not isinstance(disk, dict)
            or disk.get("version") != STORE_VERSION
            or not isinstance(disk.get("entries"), dict)
        ):
            return
        entries = self._manifest["entries"]
        for digest, row in disk["entries"].items():
            if digest in entries or not isinstance(row, dict):
                continue
            if self._object_path(str(digest)).exists():
                entries[digest] = row
        costs = self._manifest.setdefault("costs", {})
        disk_costs = disk.get("costs")
        if isinstance(disk_costs, dict):
            for key, row in disk_costs.items():
                if key not in costs and isinstance(row, dict):
                    costs[key] = row
        disk_clock = disk.get("clock")
        if isinstance(disk_clock, int) and disk_clock > self._manifest["clock"]:
            self._manifest["clock"] = disk_clock

    def _save_manifest(self, merge: bool = True) -> None:
        self._dirty = False
        self.root.mkdir(parents=True, exist_ok=True)
        with self._manifest_file_lock():
            if merge:
                self._merge_disk_manifest()
            blob = json.dumps(self._manifest, indent=1, sort_keys=True).encode()
            self._tmp_counter += 1
            tmp = self._manifest_path.with_name(
                f".manifest.{os.getpid()}.{self._tmp_counter}.tmp"
            )
            try:
                tmp.write_bytes(blob)
                os.replace(tmp, self._manifest_path)
            finally:
                self._unlink(tmp)

    @staticmethod
    def _file_size(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    @staticmethod
    def _unlink(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskShardStore(root={str(self.root)!r}, max_bytes={self.max_bytes})"


def build_result_cache(
    cache_dir: str | Path | None = None,
    max_bytes: int | None = None,
    enabled: bool = True,
):
    """Assemble a :class:`~repro.exec.cache.QueryResultCache` from knobs.

    Resolution order mirrors the CLIs: an explicit ``cache_dir`` wins,
    then ``REPRO_CACHE_DIR``; with neither, the cache is memory-only.
    ``enabled=False`` (the ``--no-cache`` flag) returns None — no caching
    at any tier.
    """
    from .cache import QueryResultCache

    if not enabled:
        return None
    root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    if root is None:
        return QueryResultCache()
    if max_bytes is None:
        max_bytes = default_cache_max_bytes()
    return QueryResultCache(store=DiskShardStore(root, max_bytes=max_bytes))
