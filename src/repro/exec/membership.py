"""Elastic fleet membership: registration, heartbeats, failure detection.

PR 5 made curation distributed but the fleet was *static*: the
coordinator was handed ``--remote-workers host:port,...`` at startup and
only discovered a dead worker when a socket broke mid-RPC.  This module
is the missing control plane — a latency/state dissemination layer in
the spirit of GLIDS (PAPERS.md §Related work) informing placement:

* workers **register** with the coordinator (announcing their serve
  address, width, and whether they carry a warm disk store), then
  **heartbeat** on the interval the coordinator hands back;
* the coordinator's :class:`FleetDirectory` marks a worker **suspect**
  after K missed beats and **dead** after a timeout; a graceful
  **deregister** takes the distinct ``left`` path, so shutdown and crash
  are separately observable (and separately tested);
* late joiners are admitted mid-run: the elastic dispatcher
  (:class:`~repro.exec.remote.DistributedExecutor` in elastic mode)
  watches the directory and spawns dispatch connections for every new
  registration, so a hot-added worker immediately pulls ("steals")
  queued specs from the live LPT queue.

The heartbeat/suspicion state machine is deliberately **sans-I/O**:
:class:`FleetDirectory` never sleeps, never opens a socket, and reads
time only from an injectable clock (the :class:`~repro.net.clock.
VirtualClock` idiom), so every membership transition — join, missed
beat, flapping, rejoin-after-death, steal-vs-requeue races — is
unit-testable deterministically with zero real sleeps
(``tests/test_membership.py``), and chaos runs that drop heartbeats
replay bit-identically.  The I/O shells around it are thin:
:class:`FleetCoordinator` mounts the directory behind three RPC verbs
plus a real-clock sweeper thread, and :class:`CoordinatorLink` is the
worker-side join/heartbeat loop.
"""

from __future__ import annotations

import os
import random
import threading
import zlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from ..core.retry import BackoffPolicy
from ..errors import ConfigurationError, TransportError
from ..net.clock import Clock, RealClock
from ..net.rpc import RpcClient, RpcRemoteError, RpcServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.faults import FaultProfile

__all__ = [
    "COORDINATOR_ENV",
    "DEFAULT_COORDINATOR",
    "ELASTIC_ENV",
    "CoordinatorLink",
    "FleetCoordinator",
    "FleetDirectory",
    "WorkerRecord",
    "WORKER_STATES",
    "default_coordinator_address",
    "default_elastic",
    "ensure_coordinator",
    "fleet_snapshot",
    "parse_coordinator_address",
    "shutdown_coordinators",
    "worker_identity",
]

#: Environment variable switching ``--backend remote`` into elastic mode
#: (consume the membership directory instead of a static worker list).
ELASTIC_ENV = "REPRO_ELASTIC"

#: Environment variable naming the coordinator bind address workers join
#: (``--coordinator`` on the CLIs, ``--join`` on the worker).
COORDINATOR_ENV = "REPRO_COORDINATOR"

#: Default coordinator address when elastic mode is on and nothing names
#: one.  A fixed port — not 0 — because workers must be able to find it.
DEFAULT_COORDINATOR = "127.0.0.1:7070"

#: Worker states.  ``live`` and ``suspect`` are dispatchable; ``dead``
#: (missed beats past the timeout) and ``left`` (graceful deregister)
#: are terminal until the worker registers again.
WORKER_STATES = ("live", "suspect", "dead", "left")


def default_elastic() -> bool:
    """Elastic-mode default from ``REPRO_ELASTIC``."""
    return os.environ.get(ELASTIC_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def parse_coordinator_address(raw: str) -> tuple[str, int]:
    """Parse one ``host:port`` coordinator address."""
    host, _, port = raw.strip().rpartition(":")
    if not host:
        raise ConfigurationError(
            f"coordinator address {raw!r} is not host:port"
        )
    try:
        return (host, int(port))
    except ValueError:
        raise ConfigurationError(
            f"coordinator address {raw!r} has a non-integer port"
        ) from None


def default_coordinator_address() -> tuple[str, int]:
    """Coordinator address from ``REPRO_COORDINATOR`` (or the default)."""
    return parse_coordinator_address(
        os.environ.get(COORDINATOR_ENV, "").strip() or DEFAULT_COORDINATOR
    )


@dataclass
class WorkerRecord:
    """One worker as the membership directory sees it.

    ``incarnation`` bumps on every (re-)registration under the same
    worker id, so a worker that died and rejoined is distinguishable
    from its previous life — the dispatcher keys its connection fan-out
    on ``(worker_id, incarnation)`` and never confuses a zombie's
    in-flight work with the rejoined worker's.
    """

    worker_id: str
    address: tuple[str, int]
    width: int = 1
    has_store: bool = False
    pid: int = 0
    state: str = "live"
    last_beat: float = 0.0
    joined_at: float = 0.0
    incarnation: int = 1
    beats: int = 0

    @property
    def dispatchable(self) -> bool:
        """May the dispatcher (keep) sending this worker specs?

        Suspect workers stay dispatchable: missed beats are a *hint*
        (their in-flight specs are not yet re-queued), and a beat takes
        them straight back to live.  Dead and left workers are not.
        """
        return self.state in ("live", "suspect")

    @property
    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


class FleetDirectory:
    """The sans-I/O membership state machine the coordinator runs.

    All transitions are driven by explicit calls — :meth:`register`,
    :meth:`heartbeat`, :meth:`deregister` from the RPC verbs and
    :meth:`sweep` from a clock — against an injectable ``clock`` whose
    only required method is ``now()``.  Under a
    :class:`~repro.net.clock.VirtualClock` the whole state machine is
    deterministic and sleep-free; under the default
    :class:`~repro.net.clock.RealClock` it tracks wall time.

    The state diagram (see DESIGN.md "Fleet membership")::

        register ──► live ──(suspect_misses × interval without a beat)──► suspect
                      ▲  ▲                                                  │
                      │  └──────────────── heartbeat ◄──────────────────────┤
                  register                                   (dead_after without a beat)
                      │                                                     ▼
                    dead ◄──────────────────────────────────────────────────┘
                      │
        deregister ──► left        (heartbeats from dead/left are refused:
                                    the worker must register again, which
                                    bumps its incarnation)

    Args:
        clock: Time source (``now()`` only).  Defaults to wall time.
        heartbeat_interval: Cadence handed to registering workers,
            seconds.
        suspect_misses: Consecutive missed beats before ``live`` turns
            ``suspect``.
        dead_after: Seconds without a beat before a worker is declared
            ``dead`` (must exceed the suspect window).

    Thread-safe; every mutation bumps :attr:`version` and wakes
    :meth:`wait_for_change` waiters, so an elastic dispatcher can react
    to membership changes without polling hot.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        heartbeat_interval: float = 0.5,
        suspect_misses: int = 3,
        dead_after: float = 5.0,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be positive: {heartbeat_interval}"
            )
        if suspect_misses < 1:
            raise ConfigurationError(
                f"suspect_misses must be >= 1: {suspect_misses}"
            )
        if dead_after <= suspect_misses * heartbeat_interval:
            raise ConfigurationError(
                f"dead_after ({dead_after}) must exceed the suspect window "
                f"({suspect_misses} x {heartbeat_interval})"
            )
        self._clock = clock if clock is not None else RealClock()
        self.heartbeat_interval = float(heartbeat_interval)
        self.suspect_misses = int(suspect_misses)
        self.dead_after = float(dead_after)
        self._records: dict[str, WorkerRecord] = {}
        self._cv = threading.Condition()
        self._version = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def suspect_after(self) -> float:
        """Seconds without a beat before ``live`` turns ``suspect``."""
        return self.suspect_misses * self.heartbeat_interval

    @property
    def version(self) -> int:
        """Monotonic change counter (bumped on every transition)."""
        with self._cv:
            return self._version

    def wait_for_change(self, version: int, timeout: float) -> int:
        """Block until the directory changes past ``version`` (bounded).

        Returns the current version either way — equal to ``version``
        on timeout.  Real-time only (used by the elastic dispatcher);
        fake-clock tests drive :meth:`sweep` directly and never wait.
        """
        with self._cv:
            if self._version == version:
                self._cv.wait(timeout=timeout)
            return self._version

    def workers(self) -> tuple[WorkerRecord, ...]:
        """Snapshot of every known worker (copies; sorted by id)."""
        with self._cv:
            return tuple(
                replace(rec) for _, rec in sorted(self._records.items())
            )

    def dispatchable_workers(self) -> tuple[WorkerRecord, ...]:
        """Snapshot of the workers specs may be sent to (live+suspect)."""
        return tuple(rec for rec in self.workers() if rec.dispatchable)

    def get(self, worker_id: str) -> WorkerRecord | None:
        """Snapshot of one worker (None if unknown)."""
        with self._cv:
            rec = self._records.get(worker_id)
            return replace(rec) if rec is not None else None

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def register(
        self,
        worker_id: str,
        address: tuple[str, int],
        width: int = 1,
        has_store: bool = False,
        pid: int = 0,
    ) -> WorkerRecord:
        """Admit (or re-admit) a worker; returns its record snapshot.

        Registration is the only way into the fleet and the only way
        *back* in: a worker the directory declared dead (or that left)
        must register again, which bumps its ``incarnation`` so the
        dispatcher can tell the rejoined worker from its previous life.
        Re-registering while live (a flapping worker that restarted
        faster than the failure detector noticed) bumps the incarnation
        too — the old serve loop is gone either way.
        """
        if width < 1:
            raise ConfigurationError(f"worker width must be >= 1: {width}")
        with self._cv:
            now = self._clock.now()
            rec = self._records.get(worker_id)
            if rec is None:
                rec = WorkerRecord(
                    worker_id=worker_id,
                    address=(address[0], int(address[1])),
                    width=int(width),
                    has_store=bool(has_store),
                    pid=int(pid),
                    state="live",
                    last_beat=now,
                    joined_at=now,
                    incarnation=1,
                )
                self._records[worker_id] = rec
            else:
                rec.address = (address[0], int(address[1]))
                rec.width = int(width)
                rec.has_store = bool(has_store)
                rec.pid = int(pid)
                rec.state = "live"
                rec.last_beat = now
                rec.joined_at = now
                rec.incarnation += 1
                rec.beats = 0
            self._bump()
            return replace(rec)

    def heartbeat(self, worker_id: str) -> str | None:
        """Record one beat; returns the worker's state, or None if the
        beat is refused (unknown, dead, or left — the worker must
        register again).

        A beat from a suspect worker heals it back to live ("flapping"):
        suspicion is a hint, not a verdict, and the beat *is* the
        evidence it was wrong.  A beat from a dead worker is refused
        even though the process is evidently alive — the directory
        already told the dispatcher to re-queue its in-flight specs, so
        resurrecting the old incarnation silently could double-run work
        against a retired connection set; re-registration (a new
        incarnation) is the one sanctioned way back.
        """
        with self._cv:
            rec = self._records.get(worker_id)
            if rec is None or rec.state in ("dead", "left"):
                return None
            rec.last_beat = self._clock.now()
            rec.beats += 1
            if rec.state == "suspect":
                rec.state = "live"
                self._bump()
            return rec.state

    def deregister(self, worker_id: str) -> bool:
        """Graceful exit: mark the worker ``left`` (False if unknown).

        Distinct from death by design: a leaving worker has answered its
        in-flight requests, so the dispatcher retires its connections
        without re-queueing anything that already completed.
        """
        with self._cv:
            rec = self._records.get(worker_id)
            if rec is None:
                return False
            if rec.state != "left":
                rec.state = "left"
                self._bump()
            return True

    def sweep(self) -> list[tuple[str, str, str]]:
        """Apply time-based transitions; returns ``(id, old, new)`` moves.

        Reads the injected clock once and compares each live/suspect
        worker's beat age against the suspect window and the dead
        timeout.  Idempotent: sweeping twice at the same instant is a
        no-op the second time.  The coordinator calls this from a
        real-clock sweeper thread; fake-clock tests call it directly
        after advancing their :class:`~repro.net.clock.VirtualClock`.
        """
        transitions: list[tuple[str, str, str]] = []
        with self._cv:
            now = self._clock.now()
            for rec in self._records.values():
                if rec.state not in ("live", "suspect"):
                    continue
                age = now - rec.last_beat
                if age >= self.dead_after:
                    transitions.append((rec.worker_id, rec.state, "dead"))
                    rec.state = "dead"
                elif age >= self.suspect_after and rec.state == "live":
                    transitions.append((rec.worker_id, "live", "suspect"))
                    rec.state = "suspect"
            if transitions:
                self._bump()
        return transitions

    def forget(self, worker_id: str) -> None:
        """Drop a worker's record entirely (directory hygiene)."""
        with self._cv:
            if self._records.pop(worker_id, None) is not None:
                self._bump()

    def _bump(self) -> None:
        # Caller holds the lock.
        self._version += 1
        self._cv.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        states = {}
        for rec in self.workers():
            states[rec.state] = states.get(rec.state, 0) + 1
        return f"FleetDirectory({states or 'empty'})"


# ----------------------------------------------------------------------
# Coordinator shell: the directory behind RPC verbs + a sweeper thread
# ----------------------------------------------------------------------
class FleetCoordinator:
    """Mounts a :class:`FleetDirectory` behind ``register`` /
    ``heartbeat`` / ``deregister`` RPC verbs (plus ``fleet`` for
    introspection) and sweeps it on a real-clock thread.

    This is the I/O shell; all membership *logic* lives in the sans-I/O
    directory.  Start one per coordinator process::

        coordinator = FleetCoordinator(port=7070)
        coordinator.start()
        # workers: python -m repro.dataset worker --join 127.0.0.1:7070
        executor = DistributedExecutor(elastic=True, coordinator=coordinator)

    Args:
        host: Interface to bind (loopback by default).
        port: Port to bind (0 = OS-assigned; read :attr:`address` —
            useful for tests, useless for workers that need a known
            address to join).
        directory: An existing directory to mount (a fresh one with the
            keyword defaults otherwise).
        sweep_interval: Sweeper cadence, seconds (default: half the
            directory's heartbeat interval).
        fault_profile: Optional fault injection on the membership
            server's frames (chaos tests drop heartbeat replies).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        directory: FleetDirectory | None = None,
        heartbeat_interval: float = 0.5,
        suspect_misses: int = 3,
        dead_after: float = 5.0,
        sweep_interval: float | None = None,
        fault_profile: "FaultProfile | str | None" = None,
    ) -> None:
        self.directory = directory if directory is not None else FleetDirectory(
            heartbeat_interval=heartbeat_interval,
            suspect_misses=suspect_misses,
            dead_after=dead_after,
        )
        self.sweep_interval = (
            sweep_interval
            if sweep_interval is not None
            else self.directory.heartbeat_interval / 2
        )
        self._server = RpcServer(
            {
                "register": self._handle_register,
                "heartbeat": self._handle_heartbeat,
                "deregister": self._handle_deregister,
                "fleet": self._handle_fleet,
            },
            host=host,
            port=port,
            fault_profile=fault_profile,
        )
        self._sweeper: threading.Thread | None = None
        self._stopping = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    def start(self) -> "FleetCoordinator":
        self._stopping.clear()
        self._server.start()
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="fleet-sweep", daemon=True
        )
        self._sweeper.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=2.0)
            self._sweeper = None
        self._server.stop()

    def __enter__(self) -> "FleetCoordinator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _sweep_loop(self) -> None:
        while not self._stopping.wait(timeout=self.sweep_interval):
            self.directory.sweep()

    # ------------------------------------------------------------------
    # RPC verbs
    # ------------------------------------------------------------------
    def _handle_register(self, payload: dict) -> dict:
        worker_id = str(payload["worker"])
        record = self.directory.register(
            worker_id,
            address=(str(payload["host"]), int(payload["port"])),
            width=int(payload.get("width", 1)),
            has_store=bool(payload.get("store", False)),
            pid=int(payload.get("pid", 0)),
        )
        return {
            "ok": True,
            "incarnation": record.incarnation,
            "heartbeat_interval": self.directory.heartbeat_interval,
            "dead_after": self.directory.dead_after,
        }

    def _handle_heartbeat(self, payload: dict) -> dict:
        state = self.directory.heartbeat(str(payload["worker"]))
        if state is None:
            # Refused — stale incarnation or unknown id.  ok=False (not
            # an error status) so the link re-registers without noise.
            return {"ok": False, "reason": "register"}
        return {"ok": True, "state": state}

    def _handle_deregister(self, payload: dict) -> dict:
        known = self.directory.deregister(str(payload["worker"]))
        return {"ok": True, "known": known}

    def _handle_fleet(self, _payload: dict) -> dict:
        return {
            "workers": [
                {
                    "worker": rec.worker_id,
                    "host": rec.address[0],
                    "port": rec.address[1],
                    "width": rec.width,
                    "store": rec.has_store,
                    "pid": rec.pid,
                    "state": rec.state,
                    "incarnation": rec.incarnation,
                    "beats": rec.beats,
                }
                for rec in self.directory.workers()
            ],
            "version": self.directory.version,
        }


# ----------------------------------------------------------------------
# Process-wide coordinator (the --elastic / REPRO_ELASTIC path)
# ----------------------------------------------------------------------
_coordinators: dict[tuple[str, int], FleetCoordinator] = {}
_coordinators_lock = threading.Lock()


def ensure_coordinator(
    address: tuple[str, int] | None = None,
) -> FleetCoordinator:
    """The process-wide coordinator bound to ``address`` (started once).

    Every elastic :class:`~repro.exec.remote.DistributedExecutor` in a
    process shares one coordinator per bind address, so a long test or
    experiment run presents workers a single stable membership endpoint.
    The coordinator lives for the process; :func:`shutdown_coordinators`
    exists for test hygiene.
    """
    if address is None:
        address = default_coordinator_address()
    key = (address[0], int(address[1]))
    with _coordinators_lock:
        coordinator = _coordinators.get(key)
        if coordinator is None:
            try:
                coordinator = FleetCoordinator(host=key[0], port=key[1])
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot bind the elastic coordinator on "
                    f"{key[0]}:{key[1]}: {exc} (is another coordinator "
                    "already running there? set REPRO_COORDINATOR to a "
                    "free host:port)"
                ) from exc
            coordinator.start()
            _coordinators[key] = coordinator
        return coordinator


def shutdown_coordinators() -> None:
    """Stop every process-wide coordinator (test hygiene)."""
    with _coordinators_lock:
        coordinators = list(_coordinators.values())
        _coordinators.clear()
    for coordinator in coordinators:
        coordinator.stop()


# ----------------------------------------------------------------------
# Worker side: the join/heartbeat loop
# ----------------------------------------------------------------------
class CoordinatorLink:
    """A worker's membership session: register, heartbeat, deregister.

    Runs one daemon thread that (re-)registers with the coordinator and
    beats on the interval the coordinator hands back.  The loop is
    self-healing in both directions:

    * a refused beat (``ok: false`` — the directory declared us dead, or
      a restarted coordinator lost its state) triggers an immediate
      re-registration (a fresh incarnation);
    * an unreachable coordinator (connection refused/timed out) is
      retried on a jittered backoff (the shared
      :class:`~repro.core.retry.BackoffPolicy`): the first failure waits
      roughly one interval as before, consecutive failures stretch the
      wait toward twice the interval so a whole fleet whose coordinator
      died never hammers the vacant address in lock-step — workers may
      legitimately start before their coordinator, or outlive one
      coordinator process into the next, and simply join whichever binds
      the address next.  The cap is deliberately *tight* (2x, well
      inside the directory's suspect window) so a healthy-but-lossy link
      dropping a few beats in a row never backs off far enough to be
      declared dead by its own politeness.

    Args:
        address: The coordinator's ``host:port``.
        worker_id: Stable identity for this serve loop (the worker CLI
            uses ``host:port/pid``).
        announce: Registration payload fields: ``host``, ``port``,
            ``width``, ``store``, ``pid``.
        interval: Beat cadence before the first successful registration
            (the coordinator's reply overrides it).
        fault_profile: Optional fault injection on the link's frames —
            the chaos knob that makes *heartbeat loss* a replayable
            input.  The link client's retry budget is pinned to zero so
            a dropped beat is genuinely lost (exactly what the failure
            detector must tolerate), not silently resent.
    """

    def __init__(
        self,
        address: tuple[str, int],
        worker_id: str,
        announce: dict,
        interval: float | None = None,
        fault_profile: "FaultProfile | str | None" = None,
    ) -> None:
        self.address = (address[0], int(address[1]))
        self.worker_id = worker_id
        self.announce = dict(announce)
        self.interval = float(interval) if interval else 0.5
        self._fault_profile = fault_profile
        self._stop = threading.Event()
        self._registered = False
        self._incarnation = 0
        self._client: RpcClient | None = None
        self._thread: threading.Thread | None = None
        self._failures = 0  # consecutive link failures (drives backoff)
        # Jitter seeded from the stable worker id, so chaos runs replay.
        self._rng = random.Random(zlib.crc32(worker_id.encode("utf-8")))

    # Link RPCs are short; a beat that cannot complete well inside the
    # suspect window is as good as lost.
    _CALL_TIMEOUT = 2.0

    @property
    def registered(self) -> bool:
        return self._registered

    @property
    def incarnation(self) -> int:
        return self._incarnation

    def start(self) -> "CoordinatorLink":
        self._thread = threading.Thread(
            target=self._loop, name="fleet-link", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, deregister: bool = True) -> None:
        """Stop beating; optionally send a graceful ``deregister``.

        ``deregister=True`` is the graceful-shutdown path (the directory
        records ``left``); crash paths never get here, which is exactly
        how death stays observable as missed beats.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self._CALL_TIMEOUT + 1.0)
            self._thread = None
        if deregister and self._registered:
            try:
                with self._fresh_client() as client:
                    client.call("deregister", {"worker": self.worker_id})
            except (TransportError, RpcRemoteError, OSError):
                pass  # best-effort: a gone coordinator needs no goodbye
            self._registered = False
        self._drop_client()

    def __enter__(self) -> "CoordinatorLink":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _fresh_client(self) -> RpcClient:
        return RpcClient(
            self.address,
            timeout=self._CALL_TIMEOUT,
            fault_profile=self._fault_profile,
            reliable=False,
            fault_retries=0,
        )

    def _ensure_client(self) -> RpcClient:
        if self._client is None:
            self._client = self._fresh_client()
        return self._client

    def _drop_client(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                if not self._registered:
                    reply = self._ensure_client().call(
                        "register", {"worker": self.worker_id, **self.announce}
                    )
                    self._incarnation = int(reply.get("incarnation", 0))
                    self.interval = float(
                        reply.get("heartbeat_interval", self.interval)
                    )
                    self._registered = True
                    self._failures = 0
                else:
                    reply = self._ensure_client().call(
                        "heartbeat", {"worker": self.worker_id}
                    )
                    self._failures = 0
                    if not reply.get("ok", False):
                        # Declared dead (or the coordinator restarted):
                        # re-register on the next pass, without waiting a
                        # full interval — the sooner the fleet heals, the
                        # fewer specs get needlessly re-queued.
                        self._registered = False
                        continue
            except (TransportError, RpcRemoteError, OSError):
                # Coordinator unreachable or the beat was chaos-dropped.
                # Either way: fresh registration attempt after a backoff.
                # Keep the *client object* — its per-dial counter keys
                # the fault injector, so each reconnect draws a distinct
                # (still seed-deterministic) fault stream; a fresh client
                # would replay dial #1's verdicts and a dropped register
                # frame would stay dropped on every retry, forever.
                self._registered = False
                self._failures += 1
            self._stop.wait(self._next_wait())
        self._drop_client()

    def _next_wait(self) -> float:
        """The pause before the next link pass, seconds.

        One interval on the healthy path.  After consecutive failures the
        shared jittered backoff stretches it, capped at twice the interval
        — enough to keep a dead coordinator's whole ex-fleet from dialing
        in lock-step, and tight enough (well inside ``suspect_misses`` x
        interval, let alone ``dead_after``) that a lossy-but-alive link
        never politely backs off into a death sentence.
        """
        if self._failures <= 1:
            return self.interval
        policy = BackoffPolicy(
            base_delay=self.interval,
            multiplier=2.0,
            max_delay=self.interval * 2.0,
            jitter=0.25,
        )
        return policy.delay(self._failures - 1, rng=self._rng)


def worker_identity(host: str, port: int, pid: int | None = None) -> str:
    """The worker id the CLI registers under: ``host:port/pid``.

    Address-qualified so two workers on one machine never collide, and
    pid-qualified so a *restarted* worker on the same port is a new
    identity (its old record dies of missed beats instead of being
    silently resurrected).
    """
    return f"{host}:{port}/{pid if pid is not None else os.getpid()}"


def fleet_snapshot(address: tuple[str, int]) -> "Sequence[dict]":
    """One-shot ``fleet`` query against a coordinator (tests, tooling)."""
    with RpcClient(address, timeout=5.0) as client:
        return client.call("fleet").get("workers", [])
