"""Thread-pool backend.

Threads share the interpreter, so this backend only pays off when work
items spend their time blocked on real I/O — exactly what fleet workers do
on the TCP transport path, where the server honors render delays with real
(scaled) sleeps.  For the in-process virtual-time transport the work is
pure CPU and the GIL serializes it; use the process backend (multi-core
hosts) or the serial backend there.

Shard work functions only touch per-shard state (fresh transport, fresh
BAT application, fresh proxy pool) plus read-only ground-truth objects, so
no locking is needed.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..errors import ConfigurationError
from .base import Executor, default_max_workers

__all__ = ["ThreadPoolBackend"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


class ThreadPoolBackend(Executor):
    """Order-preserving map over a :class:`ThreadPoolExecutor`."""

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.max_workers = max_workers or default_max_workers()

    def map(
        self,
        fn: Callable[[_ItemT], _ResultT],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            # Materialize inside the context manager so worker exceptions
            # surface here (in item order) rather than at shutdown.
            return list(pool.map(fn, items))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadPoolBackend(max_workers={self.max_workers})"
