"""Distributed execution backend: shard specs over coordinator/worker RPC.

The paper's measurement campaign is embarrassingly parallel across
(city, ISP) shards, and since the spec refactor a dispatch unit is pure
data (:class:`~repro.exec.spec.ShardSpec`) that any process on any
machine rehydrates into byte-identical work.  This module is the
coordinator half of shipping those specs off-machine:

* :class:`DistributedExecutor` (registry name ``"remote"``) fans specs
  out to ``python -m repro.dataset worker`` processes over
  :mod:`repro.net.rpc`;
* each worker advertises a **width** (how many specs it runs at once) in
  its ping reply, and the dispatcher opens that many keep-alive
  connections to it — per-worker concurrency is expressed as
  connections, nothing more;
* the shared work queue is consumed in the order the curation pipeline
  dispatched (longest-processing-time-first under ``schedule="lpt"``,
  priced by the PR-4 cost model), so greedy pulling by heterogeneous
  workers *is* LPT list scheduling: wide/fast workers simply pull more;
* results come back as :class:`~repro.exec.store.DiskShardStore`-format
  entry blobs — the disk tier's wire format — which the pipeline promotes
  into the coordinator's two-tier cache exactly as if a local backend had
  executed them;
* a worker that dies mid-run (connection lost) has its in-flight spec
  **re-queued** at the front of the queue for the surviving workers;
  specs are idempotent pure functions, so re-running one elsewhere is
  always safe.  Only when *every* worker is gone with work still pending
  does the run fail;
* in **elastic mode** (``--elastic`` / ``REPRO_ELASTIC``) the fleet is
  not a static list at all: the coordinator runs a membership directory
  (:mod:`repro.exec.membership`) that workers join with ``python -m
  repro.dataset worker --join host:port``, and ``map_specs`` watches it
  live — late joiners get dispatch connections mid-run and immediately
  pull ("steal") from the shared LPT queue, workers the failure detector
  declares dead have their in-flight specs re-queued even when their
  sockets have not broken yet, and a steal-vs-requeue race is harmless
  by construction (results are recorded first-completion-wins, and every
  completion of one spec is byte-identical).

Generic :meth:`Executor.map` work — closures over live objects — cannot
cross a machine boundary and is deliberately **not** shipped: it degrades
to a local in-order loop, so a process-wide ``REPRO_EXEC_BACKEND=remote``
still runs every non-spec consumer correctly (and the curation pipeline,
the only spec producer, is the only thing that actually distributes).
"""

from __future__ import annotations

import contextlib
import os
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence, TypeVar

from ..errors import ConfigurationError, TransportError
from ..net.faults import FaultProfile
from ..net.rpc import RpcBusyError, RpcClient, RpcRemoteError
from .base import Executor
from .membership import (
    FleetCoordinator,
    WorkerRecord,
    default_elastic,
    ensure_coordinator,
)
from .spec import spec_to_wire
from .store import observation_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataset.records import AddressObservation
    from .spec import ShardSpec

__all__ = [
    "DistributedExecutor",
    "WorkerInfo",
    "default_remote_workers",
    "local_worker_pool",
    "parse_worker_addresses",
    "start_local_worker",
    "stop_local_worker",
]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Environment variable naming the worker fleet as a comma-separated list
#: of ``host:port`` addresses (the ``--remote-workers`` CLI flag
#: overrides it).
REMOTE_WORKERS_ENV = "REPRO_REMOTE_WORKERS"


def parse_worker_addresses(raw: str) -> tuple[tuple[str, int], ...]:
    """Parse ``host:port,host:port,...`` into address tuples.

    >>> parse_worker_addresses("127.0.0.1:7071, 127.0.0.1:7072")
    (('127.0.0.1', 7071), ('127.0.0.1', 7072))
    """
    addresses: list[tuple[str, int]] = []
    for piece in raw.split(","):
        piece = piece.strip()
        if not piece:
            continue
        host, _, port = piece.rpartition(":")
        if not host:
            raise ConfigurationError(
                f"worker address {piece!r} is not host:port"
            )
        try:
            addresses.append((host, int(port)))
        except ValueError:
            raise ConfigurationError(
                f"worker address {piece!r} has a non-integer port"
            ) from None
    return tuple(addresses)


def default_remote_workers() -> tuple[tuple[str, int], ...]:
    """Worker addresses from ``REPRO_REMOTE_WORKERS`` (empty when unset)."""
    return parse_worker_addresses(os.environ.get(REMOTE_WORKERS_ENV, ""))


@dataclass
class WorkerInfo:
    """One worker as the dispatcher sees it."""

    address: tuple[str, int]
    width: int = 1
    alive: bool = True
    has_store: bool = False

    @property
    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


class DistributedExecutor(Executor):
    """Executes shard specs on a fleet of remote worker processes.

    Args:
        workers: Worker addresses — a ``host:port,...`` string, a
            sequence of such strings, or ``(host, port)`` tuples.  None
            reads ``REPRO_REMOTE_WORKERS`` (how ``--backend remote``
            resolves); an empty fleet is a configuration error.
        call_timeout: Per-RPC socket timeout, seconds.  One RPC executes
            one spec, so this bounds a single dispatch unit's wall time.
        max_workers: Accepted for registry symmetry; ignored (per-worker
            concurrency is whatever each worker advertises).
        fault_profile: Optional fault injection for the coordinator side
            of every RPC connection (falls back to
            ``REPRO_FAULT_PROFILE``; ``"off"`` pins it off).
        reliable: Opt the coordinator's RPC clients into the Go-Back-N
            channel (:mod:`repro.net.reliable`) so injected frame loss
            costs a retransmission instead of a spec re-queue; ``None``
            falls back to ``REPRO_RPC_RELIABLE``.
        elastic: Consume a live membership directory
            (:mod:`repro.exec.membership`) instead of a static list:
            workers join/leave mid-run and ``map_specs`` follows.
            ``None`` resolves to True when a ``coordinator`` is passed,
            else to ``REPRO_ELASTIC`` (only when no static ``workers``
            were given — an explicit fleet always means static mode).
        coordinator: A started :class:`~repro.exec.membership.
            FleetCoordinator` to consume (elastic mode).  None starts
            (or reuses) the process-wide coordinator bound to
            ``REPRO_COORDINATOR``.
        join_timeout: Elastic mode only: how long ``map_specs`` tolerates
            an *empty* fleet — at the start of a run (workers may still
            be joining) or after losing every worker (a replacement may
            be coming) — before failing, seconds.
    """

    name = "remote"

    def __init__(
        self,
        workers: "Sequence[tuple[str, int] | str] | str | None" = None,
        call_timeout: float = 600.0,
        max_workers: int | None = None,
        fault_profile: "FaultProfile | str | None" = None,
        reliable: bool | None = None,
        elastic: bool | None = None,
        coordinator: "FleetCoordinator | None" = None,
        join_timeout: float = 30.0,
    ) -> None:
        del max_workers  # width comes from the workers themselves
        self.fault_profile = fault_profile
        self.reliable = reliable
        self.join_timeout = join_timeout
        if elastic is None:
            elastic = coordinator is not None or (
                workers is None and default_elastic()
            )
        self.elastic = elastic
        self._coordinator = coordinator
        if elastic:
            if workers is not None:
                raise ConfigurationError(
                    "elastic mode consumes the membership directory; do "
                    "not also pass a static worker list"
                )
            if self._coordinator is None:
                self._coordinator = ensure_coordinator()
            self.call_timeout = call_timeout
            self._workers: list[WorkerInfo] = []
            self._probed = False
            self._probe_lock = threading.Lock()
            return
        if workers is None:
            addresses = default_remote_workers()
            if not addresses:
                raise ConfigurationError(
                    "the remote backend needs worker addresses: set "
                    f"{REMOTE_WORKERS_ENV} or pass --remote-workers "
                    "host:port,... (start workers with "
                    "`python -m repro.dataset worker`), or run elastic "
                    "(--elastic / REPRO_ELASTIC=1) and have workers "
                    "--join the coordinator"
                )
        elif isinstance(workers, str):
            addresses = parse_worker_addresses(workers)
        else:
            flat: list[tuple[str, int]] = []
            for worker in workers:
                if isinstance(worker, str):
                    flat.extend(parse_worker_addresses(worker))
                else:
                    flat.append((worker[0], int(worker[1])))
            addresses = tuple(flat)
        if not addresses:
            raise ConfigurationError("the remote backend needs >= 1 worker")
        self.call_timeout = call_timeout
        self._workers = [WorkerInfo(address) for address in addresses]
        self._probed = False
        self._probe_lock = threading.Lock()

    @property
    def coordinator(self) -> "FleetCoordinator | None":
        """The membership coordinator (elastic mode only)."""
        return self._coordinator

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def _client(
        self, worker: WorkerInfo, timeout: float | None = None
    ) -> RpcClient:
        return RpcClient(
            worker.address,
            timeout=self.call_timeout if timeout is None else timeout,
            fault_profile=self.fault_profile,
            reliable=self.reliable,
        )

    def _probe(self) -> list[WorkerInfo]:
        """Ping every worker once; returns the live ones.

        Unreachable workers are marked dead and skipped (the fleet may
        legitimately be configured before every machine is up); they are
        not re-probed — a worker that comes back mid-run simply goes
        unused until the next executor is built.
        """
        with self._probe_lock:
            if not self._probed:
                for worker in self._workers:
                    try:
                        with self._client(worker, timeout=5.0) as client:
                            reply = client.call("ping")
                        worker.width = max(1, int(reply.get("width", 1)))
                        worker.has_store = bool(reply.get("store", False))
                        worker.alive = True
                    except (TransportError, RpcRemoteError, ValueError):
                        worker.alive = False
                self._probed = True
            return [worker for worker in self._workers if worker.alive]

    @property
    def workers(self) -> tuple[WorkerInfo, ...]:
        """The configured fleet (probing state included)."""
        return tuple(self._workers)

    @property
    def width(self) -> int:
        """Total advertised fleet concurrency (drives ``auto`` chunking).

        In elastic mode this reads the membership directory — waiting
        briefly for a first registration, so a pipeline built the
        instant after its workers were launched still chunks for the
        real fleet width instead of a momentarily-empty directory.
        """
        if self.elastic:
            assert self._coordinator is not None
            directory = self._coordinator.directory
            deadline = time.monotonic() + min(5.0, self.join_timeout)
            fleet = directory.dispatchable_workers()
            while not fleet and time.monotonic() < deadline:
                directory.wait_for_change(directory.version, timeout=0.2)
                fleet = directory.dispatchable_workers()
            return max(1, sum(worker.width for worker in fleet))
        live = self._probe()
        return max(1, sum(worker.width for worker in live))

    # ------------------------------------------------------------------
    # Executor protocol
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[_ItemT], _ResultT],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        """Generic work runs locally, in order.

        Closures cannot cross a machine boundary; only shard specs
        (:meth:`map_specs`) distribute.  Degrading to the serial
        reference keeps non-spec consumers (fleet batching, contract
        tests) correct under a process-wide remote default.
        """
        return [fn(item) for item in items]

    def map_specs(
        self, specs: "Sequence[ShardSpec]"
    ) -> "list[tuple[tuple[AddressObservation, ...], float]]":
        specs = list(specs)
        if not specs:
            return []
        if self.elastic:
            return self._map_specs_elastic(specs)
        live = self._probe()
        if not live:
            raise TransportError(
                "no remote worker is reachable: "
                + ", ".join(worker.label for worker in self._workers)
            )

        state = _DispatchState(specs)
        plan = [
            (worker, slot)
            for worker in live
            for slot in range(min(worker.width, len(specs)))
        ]
        # Counted before any thread starts, so a fast-exiting dispatcher
        # cannot race the bookkeeping below zero.
        state.live_threads = len(plan)
        threads: list[threading.Thread] = []
        for worker, slot in plan:
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(worker, state),
                name=f"remote-{worker.label}-{slot}",
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        try:
            with state.cv:
                while state.unfinished > 0 and state.error is None:
                    if state.live_threads == 0:
                        raise TransportError(
                            f"{state.unfinished} shard specs left "
                            "undispatched: every remote worker failed "
                            "mid-run"
                        )
                    state.cv.wait(timeout=0.5)
                if state.error is not None:
                    raise state.error
        finally:
            # Every exit path — success, coordinator-side error, fleet
            # death — tells the dispatchers to stand down and joins them
            # (bounded), so no daemon thread holding an open RpcClient
            # socket leaks past this call.
            with state.cv:
                state.closing = True
                state.cv.notify_all()
            for thread in threads:
                thread.join(timeout=5.0)
        return state.results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Elastic dispatch: consume the membership directory live
    # ------------------------------------------------------------------
    def _map_specs_elastic(
        self, specs: "list[ShardSpec]"
    ) -> "list[tuple[tuple[AddressObservation, ...], float]]":
        """Dispatch against whatever the directory says the fleet is.

        The reconcile loop below runs in the caller's thread: every pass
        it (1) spawns dispatch connections for each newly-registered
        ``(worker, incarnation)`` — a hot-added worker starts stealing
        from the shared LPT queue within one directory change; (2)
        retires the connection set of any worker the failure detector
        declared dead (or that gracefully left), re-queueing its
        unanswered in-flight specs at the queue front; (3) fails only
        after the fleet has been *empty* for ``join_timeout`` seconds
        with work outstanding — a momentarily-empty fleet is normal
        elasticity, not an error.

        Steal-vs-requeue races are benign by construction: a spec both
        re-queued (after its worker was declared dead) and still
        completed by that worker's zombie connection is recorded
        first-completion-wins (both byte-identical), and a later pull of
        the stale queue copy sees the result slot filled and skips it.
        """
        assert self._coordinator is not None
        directory = self._coordinator.directory
        state = _DispatchState(specs)
        controls: dict[tuple[str, int], _WorkerControl] = {}
        empty_since: float | None = None
        try:
            while True:
                with state.cv:
                    if state.error is not None:
                        raise state.error
                    if state.unfinished == 0:
                        break
                fleet = {
                    (rec.worker_id, rec.incarnation): rec
                    for rec in directory.dispatchable_workers()
                }
                for key, control in controls.items():
                    if key not in fleet:
                        self._retire(control, state)
                for key, rec in fleet.items():
                    if key not in controls:
                        controls[key] = self._enlist(rec, state, len(specs))
                if fleet:
                    empty_since = None
                elif empty_since is None:
                    empty_since = time.monotonic()
                elif time.monotonic() - empty_since > self.join_timeout:
                    with state.cv:
                        unfinished = state.unfinished
                    raise TransportError(
                        f"{unfinished} shard specs left unfinished: no "
                        f"worker joined the elastic fleet at "
                        f"{self._coordinator.address[0]}:"
                        f"{self._coordinator.address[1]} within "
                        f"{self.join_timeout:.0f}s"
                    )
                # Wake on either a result landing (state.cv) or a
                # membership change (directory version) — both bounded,
                # so neither can stall the other's signal for long.
                version = directory.version
                with state.cv:
                    if state.unfinished > 0 and state.error is None:
                        state.cv.wait(timeout=0.05)
                directory.wait_for_change(version, timeout=0.05)
        finally:
            with state.cv:
                state.closing = True
                state.cv.notify_all()
            for control in controls.values():
                for thread in control.threads:
                    thread.join(timeout=5.0)
        return state.results  # type: ignore[return-value]

    def _enlist(
        self, record: WorkerRecord, state: "_DispatchState", n_specs: int
    ) -> "_WorkerControl":
        """Spawn the dispatch connections for one worker incarnation."""
        info = WorkerInfo(
            address=record.address,
            width=record.width,
            has_store=record.has_store,
        )
        control = _WorkerControl(record.worker_id, record.incarnation)
        slots = max(1, min(record.width, n_specs))
        # Counted before any thread starts, so a fast-exiting dispatcher
        # cannot race the bookkeeping below zero.
        with state.cv:
            state.live_threads += slots
        for slot in range(slots):
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(info, state, control),
                name=(
                    f"remote-{info.label}"
                    f"#{record.incarnation}-{slot}"
                ),
                daemon=True,
            )
            thread.start()
            control.threads.append(thread)
        return control

    @staticmethod
    def _retire(control: "_WorkerControl", state: "_DispatchState") -> None:
        """Stand a dead/left worker's connections down; re-queue its
        unanswered in-flight specs at the queue front."""
        with state.cv:
            if control.retired:
                return
            control.retired = True
            for index in control.in_flight.values():
                if state.results[index] is None and index not in state.pending:
                    state.pending.appendleft(index)
            state.cv.notify_all()

    def _dispatch_loop(
        self,
        worker: WorkerInfo,
        state: "_DispatchState",
        control: "_WorkerControl | None" = None,
    ) -> None:
        client = self._client(worker)
        slot = object()  # this connection's in-flight registry key
        try:
            while True:
                with state.cv:
                    while not state.pending:
                        if (
                            state.unfinished == 0
                            or state.error is not None
                            or state.closing
                            or (control is not None and control.retired)
                        ):
                            return
                        # Work may flow back into the queue if another
                        # worker dies with specs in flight; wait for it.
                        state.cv.wait(timeout=0.1)
                    if (
                        state.error is not None
                        or state.closing
                        or (control is not None and control.retired)
                    ):
                        return
                    index = state.pending.popleft()
                    if state.results[index] is not None:
                        # A steal-vs-requeue race already completed this
                        # spec elsewhere; drop the stale queue copy.
                        continue
                    if control is not None:
                        control.in_flight[slot] = index
                spec = state.specs[index]
                try:
                    reply = client.call(
                        "run_shard", {"spec": spec_to_wire(spec)}
                    )
                    outcome = _decode_run_reply(reply)
                except RpcRemoteError as exc:
                    # Deterministic remote failure: retrying on another
                    # worker would fail identically — surface it.
                    with state.cv:
                        state.error = exc
                        state.cv.notify_all()
                    return
                except RpcBusyError as exc:
                    # The worker's admission queue refused the call before
                    # it started: the worker is saturated, not dead.  The
                    # spec goes back at the *back* of the queue (an idle
                    # worker may pull it first; at the front it would
                    # bounce straight back here) and this connection
                    # pauses for the server's Retry-After hint instead of
                    # hammering — backoff, not failover.
                    with state.cv:
                        if control is not None:
                            control.in_flight.pop(slot, None)
                        if (
                            state.results[index] is None
                            and index not in state.pending
                        ):
                            state.pending.append(index)
                        pause = min(max(exc.retry_after or 0.05, 0.01), 1.0)
                        if not state.closing and state.error is None:
                            state.cv.wait(timeout=pause)
                    continue
                except (TransportError, OSError):
                    # The connection (or the worker behind it) failed;
                    # put the in-flight spec back at the *front* — under
                    # LPT ordering it is likely long.  A short ping probe
                    # then separates a flaky connection (chaos-injected
                    # loss: reconnect and keep dispatching) from a dead
                    # worker (dial refused: retire this connection;
                    # sibling connections fail the same way on their next
                    # call).
                    with state.cv:
                        if control is not None:
                            control.in_flight.pop(slot, None)
                        if (
                            state.results[index] is None
                            and index not in state.pending
                        ):
                            state.pending.appendleft(index)
                        state.cv.notify_all()
                    client.close()
                    if self._still_alive(worker):
                        continue
                    worker.alive = False
                    return
                except Exception as exc:  # noqa: BLE001 - must not hang
                    # Anything else (an unserializable config, a decode
                    # bug) is deterministic coordinator-side: letting the
                    # thread die silently would strand the in-flight spec
                    # and hang map_specs, so surface it like a remote
                    # application error.
                    with state.cv:
                        state.error = exc
                        state.cv.notify_all()
                    return
                with state.cv:
                    if control is not None:
                        control.in_flight.pop(slot, None)
                    if state.results[index] is None:
                        # First completion wins; a racing duplicate
                        # (requeue-then-zombie-finish) is byte-identical
                        # and simply discarded.
                        state.results[index] = outcome
                        state.unfinished -= 1
                    state.cv.notify_all()
        finally:
            client.close()
            with state.cv:
                if control is not None:
                    control.in_flight.pop(slot, None)
                state.live_threads -= 1
                state.cv.notify_all()

    def _still_alive(self, worker: WorkerInfo) -> bool:
        """Ping-probe a worker after a failed call (two short attempts).

        Two attempts, so a single injected fault on the probe itself does
        not misdiagnose a healthy worker as dead; a genuinely dead worker
        refuses both dials fast.
        """
        for _ in range(2):
            try:
                with self._client(worker, timeout=5.0) as probe:
                    probe.call("ping")
                return True
            except (TransportError, RpcRemoteError, OSError):
                continue
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fleet = ",".join(worker.label for worker in self._workers)
        return f"DistributedExecutor(workers=[{fleet}])"


class _DispatchState:
    """Shared queue/results/accounting for one ``map_specs`` call."""

    def __init__(self, specs: "list[ShardSpec]") -> None:
        self.specs = specs
        self.pending: deque[int] = deque(range(len(specs)))
        self.results: "list[tuple[tuple[AddressObservation, ...], float] | None]" = (
            [None] * len(specs)
        )
        self.unfinished = len(specs)
        self.live_threads = 0
        self.error: BaseException | None = None
        self.closing = False  # map_specs is exiting: dispatchers stand down
        self.cv = threading.Condition()


class _WorkerControl:
    """Per-(worker, incarnation) dispatch bookkeeping for elastic mode.

    ``in_flight`` maps each live dispatch connection (keyed by a private
    sentinel) to the spec index it is currently awaiting, so the
    reconcile loop can re-queue exactly the unanswered work when the
    failure detector declares this incarnation dead.  All fields are
    guarded by the owning ``_DispatchState.cv``.
    """

    def __init__(self, worker_id: str, incarnation: int) -> None:
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.retired = False
        self.in_flight: dict[object, int] = {}
        self.threads: list[threading.Thread] = []


def _decode_run_reply(
    reply: dict,
) -> "tuple[tuple[AddressObservation, ...], float]":
    """Decode a worker's ``run_shard`` reply (a store-format entry blob)."""
    try:
        entry = reply["entry"]
        rows = entry["observations"]
        observations = tuple(observation_from_dict(row) for row in rows)
        wall_seconds = float(reply.get("wall_seconds", 0.0))
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed run_shard reply: {exc}") from exc
    return observations, wall_seconds


# ----------------------------------------------------------------------
# Loopback fleets (tests, benchmarks, quick starts)
# ----------------------------------------------------------------------
def start_local_worker(
    width: int = 2,
    cache_dir: "str | Path | None" = None,
    extra_args: Sequence[str] = (),
) -> subprocess.Popen:
    """Spawn one loopback worker process (port 0, banner on stdout).

    The returned process has a live ``stdout`` pipe; pass it to
    ``_await_worker_banner`` to learn its bound address, and retire it
    with ``stop_local_worker``.  Elastic tests use this directly to
    hot-add a worker mid-``map_specs``.
    """
    import repro

    src_root = Path(repro.__file__).resolve().parents[1]
    existing = os.environ.get("PYTHONPATH", "")
    env = dict(
        os.environ,
        PYTHONPATH=(
            f"{src_root}{os.pathsep}{existing}" if existing else str(src_root)
        ),
    )
    command = [
        sys.executable, "-m", "repro.dataset", "worker",
        "--host", "127.0.0.1", "--port", "0",
        "--width", str(width),
    ]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    command += list(extra_args)
    return subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def stop_local_worker(proc: subprocess.Popen, timeout: float = 10.0) -> None:
    """Terminate a loopback worker and reap it (kill if it lingers)."""
    if proc.poll() is None:
        proc.terminate()
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
        proc.kill()
        proc.wait(timeout=timeout)
    if proc.stdout is not None:
        proc.stdout.close()


@contextlib.contextmanager
def local_worker_pool(
    count: int = 2,
    width: int = 2,
    cache_dir: "str | Path | None" = None,
    extra_args: Sequence[str] = (),
    startup_timeout: float = 60.0,
) -> Iterator[tuple[tuple[str, int], ...]]:
    """Spawn ``count`` loopback worker processes; yields their addresses.

    The zero-config way to try (and test) the remote backend on one
    machine::

        with local_worker_pool(count=2, width=4) as addresses:
            executor = DistributedExecutor(workers=addresses)
            ...

    Workers bind port 0 and print their bound address on stdout, which is
    parsed here; ``cache_dir`` hands every worker the *same* store root
    (exercising the cross-process manifest lock).  Workers are terminated
    on exit.
    """
    procs: list[subprocess.Popen] = []
    addresses: list[tuple[str, int]] = []
    try:
        for _ in range(count):
            procs.append(
                start_local_worker(
                    width=width, cache_dir=cache_dir, extra_args=extra_args
                )
            )
        for proc in procs:
            addresses.append(_await_worker_banner(proc, startup_timeout))
        yield tuple(addresses)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                proc.kill()
                proc.wait(timeout=10.0)
            if proc.stdout is not None:
                proc.stdout.close()


def _await_worker_banner(
    proc: subprocess.Popen, timeout: float
) -> tuple[str, int]:
    """Parse ``... listening on host:port`` from a worker's stdout.

    Bounded by ``timeout`` even against a worker that hangs without
    printing anything: the pipe is polled with ``select`` so a blocked
    ``readline`` can never outlive the deadline.
    """
    import select as _select
    import time as _time

    deadline = _time.monotonic() + timeout
    assert proc.stdout is not None
    while _time.monotonic() < deadline:
        if proc.poll() is not None:
            raise TransportError(
                f"worker exited with {proc.returncode} before listening"
            )
        ready, _, _ = _select.select([proc.stdout], [], [], 0.2)
        if not ready:
            continue
        line = proc.stdout.readline()
        if not line:
            continue
        marker = " listening on "
        if marker in line:
            address = line.rsplit(marker, 1)[1].strip().split()[0]
            host, _, port = address.rpartition(":")
            return (host, int(port))
    raise TransportError("worker did not announce a listening address in time")
