"""Pluggable parallel execution: backends, registry, and the result cache.

The curation pipeline and the container fleet dispatch independent units
of work (city/ISP shards, per-worker query batches) through an
:class:`~repro.exec.base.Executor`.  Four interchangeable backends exist
— serial, thread pool, process pool, and an asyncio coroutine fleet — and
because every dispatched unit is a pure function of configuration and
derived seeds, all four produce byte-identical datasets; only wall-clock
time differs.

:class:`~repro.exec.cache.QueryResultCache` complements the executors: it
remembers finished shard results under content-addressed keys so repeated
curation runs over unchanged worlds skip the replay entirely.  With a
:class:`~repro.exec.store.DiskShardStore` attached it becomes two-tier —
shards persist across processes and CI runs, with atomic writes, versioned
serialization, and LRU eviction under a byte cap.

:mod:`~repro.exec.schedule` decides *in what order and what pieces* the
units reach an executor: shards are priced by a cost model (observed wall
times recorded in the disk store's manifest, politeness-based estimates
otherwise), dispatched longest-first, and oversized shards split into
byte-transparent sub-shard chunks so no single straggler serializes the
tail of a run.
"""

from .aio import DEFAULT_ASYNC_CONCURRENCY, AsyncExecutor
from .base import (
    EXECUTOR_BACKENDS,
    Executor,
    default_backend,
    default_max_workers,
    resolve_executor,
)
from .cache import (
    CacheStats,
    QueryResultCache,
    address_cache_key,
    shard_cache_keys,
)
from .membership import (
    CoordinatorLink,
    FleetCoordinator,
    FleetDirectory,
    WorkerRecord,
    default_coordinator_address,
    default_elastic,
    ensure_coordinator,
    parse_coordinator_address,
    shutdown_coordinators,
    worker_identity,
)
from .processes import ProcessPoolBackend
from .remote import (
    DistributedExecutor,
    WorkerInfo,
    default_remote_workers,
    local_worker_pool,
    parse_worker_addresses,
    start_local_worker,
    stop_local_worker,
)
from .schedule import (
    SCHEDULE_MODES,
    ShardCost,
    ShardCostModel,
    calibrate_costs,
    chunk_spans,
    default_chunk_tasks,
    default_schedule,
    lpt_order,
    resolve_chunk_tasks,
)
from .serial import SerialExecutor
from .spec import (
    ShardSpec,
    run_shard_spec,
    spec_cache_keys,
    spec_from_wire,
    spec_to_wire,
)
from .store import (
    STORE_VERSION,
    DiskShardStore,
    ShardCostRecord,
    ShardMeta,
    StoreEntry,
    build_result_cache,
    default_cache_dir,
    default_cache_max_bytes,
    observation_from_dict,
    observation_to_dict,
    shard_digest,
)
from .threads import ThreadPoolBackend

__all__ = [
    "Executor",
    "EXECUTOR_BACKENDS",
    "default_backend",
    "default_max_workers",
    "resolve_executor",
    "SerialExecutor",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "AsyncExecutor",
    "DEFAULT_ASYNC_CONCURRENCY",
    "DistributedExecutor",
    "WorkerInfo",
    "default_remote_workers",
    "local_worker_pool",
    "parse_worker_addresses",
    "start_local_worker",
    "stop_local_worker",
    "CoordinatorLink",
    "FleetCoordinator",
    "FleetDirectory",
    "WorkerRecord",
    "default_coordinator_address",
    "default_elastic",
    "ensure_coordinator",
    "parse_coordinator_address",
    "shutdown_coordinators",
    "worker_identity",
    "ShardSpec",
    "run_shard_spec",
    "spec_cache_keys",
    "spec_from_wire",
    "spec_to_wire",
    "CacheStats",
    "QueryResultCache",
    "address_cache_key",
    "shard_cache_keys",
    "STORE_VERSION",
    "DiskShardStore",
    "ShardMeta",
    "ShardCostRecord",
    "StoreEntry",
    "build_result_cache",
    "default_cache_dir",
    "default_cache_max_bytes",
    "observation_from_dict",
    "observation_to_dict",
    "shard_digest",
    "SCHEDULE_MODES",
    "ShardCost",
    "ShardCostModel",
    "calibrate_costs",
    "chunk_spans",
    "default_chunk_tasks",
    "default_schedule",
    "lpt_order",
    "resolve_chunk_tasks",
]
