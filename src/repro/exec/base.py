"""The executor protocol and backend registry.

An :class:`Executor` maps a function over a list of work items and returns
the results **in item order** — the one contract every consumer in the
library relies on for determinism.  Three interchangeable backends
implement it:

* :class:`~repro.exec.serial.SerialExecutor` — a plain loop in the calling
  thread (the reference implementation; also the fastest choice for
  CPU-bound virtual-time simulation on a single core);
* :class:`~repro.exec.threads.ThreadPoolBackend` — a
  :class:`concurrent.futures.ThreadPoolExecutor`; pays off when work items
  block on real I/O (the TCP transport path);
* :class:`~repro.exec.processes.ProcessPoolBackend` — a
  :class:`concurrent.futures.ProcessPoolExecutor`; sidesteps the GIL for
  CPU-bound work on multi-core hosts.  Work functions and items must be
  picklable;
* :class:`~repro.exec.aio.AsyncExecutor` — a semaphore-bounded coroutine
  fleet on one asyncio event loop; the cheapest way to overlap thousands
  of I/O-bound work items (the async-TCP query path).  Coroutine work
  functions run concurrently; synchronous ones degrade to an in-order
  loop;
* :class:`~repro.exec.remote.DistributedExecutor` — shard specs shipped
  over RPC to ``python -m repro.dataset worker`` processes on any
  machine (``REPRO_REMOTE_WORKERS`` / ``--remote-workers``).  Only
  :meth:`Executor.map_specs` distributes; generic :meth:`Executor.map`
  work runs locally.

Because the parallel unit everywhere in the library is a *deterministic
shard* (a pure function of configuration and derived seed), the choice of
backend never changes results — only wall-clock time.  The determinism
parity tests in ``tests/test_exec_backends.py`` enforce this.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataset.records import AddressObservation
    from .spec import ShardSpec

__all__ = [
    "Executor",
    "EXECUTOR_BACKENDS",
    "resolve_executor",
    "default_backend",
    "default_max_workers",
]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def default_backend() -> str:
    """Backend name from the ``REPRO_EXEC_BACKEND`` environment variable.

    Serial when unset.  Both CLIs fall back to this when ``--backend`` is
    not given, as does the experiment context.
    """
    return os.environ.get("REPRO_EXEC_BACKEND", "serial")


def default_max_workers() -> int:
    """Default pool width: the host's CPU count, floored at two.

    Even on a single-core host a width of two lets I/O-bound work overlap,
    which is the only parallelism that pays there.
    """
    return max(2, os.cpu_count() or 1)


class Executor(ABC):
    """Order-preserving batch executor over independent work items."""

    #: Registry key of the backend (``"serial"``, ``"thread"``,
    #: ``"process"``, ``"async"``).
    name: str = "abstract"

    @abstractmethod
    def map(
        self,
        fn: Callable[[_ItemT], _ResultT],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        """Apply ``fn`` to every item and return results in item order.

        Exceptions raised by ``fn`` propagate to the caller (the first one
        encountered in item order); partial results are discarded.
        """

    @property
    def width(self) -> int:
        """How many work items this backend runs concurrently.

        One for the serial backend; the pool/semaphore width for the
        parallel backends (they all expose ``max_workers``).  The curation
        scheduler sizes sub-shard chunks from this so no single dispatch
        unit can serialize the tail of a run.
        """
        return int(getattr(self, "max_workers", 1))

    def map_specs(
        self, specs: "Sequence[ShardSpec]"
    ) -> "list[tuple[tuple[AddressObservation, ...], float]]":
        """Execute curation shard specs, results in spec order.

        The spec-shaped sibling of :meth:`map`: every dispatch unit the
        curation pipeline hands an executor is a serializable
        :class:`~repro.exec.spec.ShardSpec`, and this is where a backend
        decides how to run them.  The default routes through
        :func:`~repro.exec.spec.run_shard_spec` on the backend's own
        :meth:`map` — correct for every in-process backend (and the
        process pool, since specs pickle).  The remote backend overrides
        this to ship specs to worker machines instead.
        """
        from .spec import run_shard_spec

        return self.map(run_shard_spec, list(specs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _backend_factories() -> dict[str, Callable[..., Executor]]:
    # Imported lazily so ``base`` has no import-time dependency on the
    # concrete backends (which import ``base`` themselves).
    from .aio import AsyncExecutor
    from .processes import ProcessPoolBackend
    from .remote import DistributedExecutor
    from .serial import SerialExecutor
    from .threads import ThreadPoolBackend

    return {
        "serial": SerialExecutor,
        "thread": ThreadPoolBackend,
        "process": ProcessPoolBackend,
        "async": AsyncExecutor,
        "remote": DistributedExecutor,
    }


#: Names accepted by :func:`resolve_executor` (and the ``--backend`` CLI
#: flags / ``REPRO_EXEC_BACKEND`` environment variable).  The ``remote``
#: backend additionally needs worker addresses (``REPRO_REMOTE_WORKERS``
#: or the ``--remote-workers`` CLI flag).
EXECUTOR_BACKENDS: tuple[str, ...] = (
    "serial", "thread", "process", "async", "remote",
)


def resolve_executor(
    spec: "Executor | str | None",
    max_workers: int | None = None,
) -> Executor:
    """Turn a backend name (or an executor instance) into an executor.

    ``None`` resolves to the serial backend.  Unknown names raise
    :class:`~repro.errors.ConfigurationError`.
    """
    if spec is None:
        spec = "serial"
    if isinstance(spec, Executor):
        return spec
    factories = _backend_factories()
    try:
        factory = factories[spec]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor backend {spec!r} "
            f"(available: {', '.join(EXECUTOR_BACKENDS)})"
        ) from None
    if spec == "serial":
        return factory()
    return factory(max_workers=max_workers)
