"""The serial reference backend: a plain loop in the calling thread."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from .base import Executor

__all__ = ["SerialExecutor"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


class SerialExecutor(Executor):
    """Runs every work item in submission order on the calling thread.

    This is the reference implementation the parallel backends are tested
    against: whatever dataset a parallel backend produces must be
    byte-identical to the serial one.
    """

    name = "serial"

    def map(
        self,
        fn: Callable[[_ItemT], _ResultT],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        return [fn(item) for item in items]
